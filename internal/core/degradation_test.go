package core

// Graceful-degradation invariants (docs/FAULTS.md): a guest that stops
// cooperating — stuck sync, crashed driver, lost release notifications —
// must be demoted to Baseline behavior after a bounded number of
// deadline-limited attempts, siblings must keep full collaboration, and
// recovery (driver re-registration or resumed heartbeats after the
// penalty) must restore the guest. These run under -race in CI.

import (
	"strings"
	"testing"

	"iorchestra/internal/blkio"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
)

func mkPlatformCfg(t *testing.T, pol Policies, cfg ManagerConfig, seed uint64) (*sim.Kernel, *hypervisor.Host, *Manager) {
	t.Helper()
	k := sim.NewKernel()
	rng := stats.NewStream(seed, "platform")
	h := hypervisor.New(k, hypervisor.Config{}, rng.Fork("host"))
	return k, h, NewManager(h, pol, cfg, rng.Fork("mgr"))
}

func flushyGuest(h *hypervisor.Host) *hypervisor.GuestRuntime {
	return h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 30},
		guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
			// The guest's own flusher is effectively off: only IOrchestra
			// (or nothing) drains these caches within the test horizon.
			WakeInterval: 60 * sim.Second, DirtyRatio: 0.9, BackgroundRatio: 0.8,
		}})
}

// A guest whose sync() never completes must burn its bounded flush
// retries, fall back, and stop shadowing its sibling in the argmax — and
// once its syncs work again, resumed heartbeats must restore it after the
// penalty and let the manager drain it.
func TestStuckSyncGuestSkippedAndSiblingFlushed(t *testing.T) {
	k, h, m := mkPlatformCfg(t, Policies{Flush: true}, ManagerConfig{
		FlushCheckInterval: 20 * sim.Millisecond,
		FlushTimeout:       100 * sim.Millisecond,
		FlushCooldown:      50 * sim.Millisecond,
		FlushMaxRetries:    2,
		FallbackPenalty:    500 * sim.Millisecond,
	}, 11)
	rt1, rt2 := flushyGuest(h), flushyGuest(h)
	d1, d2 := m.EnableGuest(rt1), m.EnableGuest(rt2)
	d1.SetSyncFault(func(string) bool { return true })
	p1, p2 := rt1.G.NewProcess(1), rt2.G.NewProcess(1)
	k.At(sim.Millisecond, func() {
		rt1.G.Disk("xvda").Write(p1, 64<<20, nil) // argmax: the stuck guest
		rt2.G.Disk("xvda").Write(p2, 32<<20, nil)
	})
	k.RunUntil(2 * sim.Second)
	if d1.StuckSyncs() == 0 {
		t.Fatal("sync fault never exercised")
	}
	if got := m.Counters().FlushTimeouts; got < 3 {
		t.Fatalf("flush timeouts = %d, want >= FlushMaxRetries+1", got)
	}
	if m.Counters().Fallbacks == 0 {
		t.Fatal("stuck guest never fell back")
	}
	// The loop proceeded: the sibling was flushed despite the stuck argmax
	// winner, and its cache drained.
	if d2.Flushes() == 0 {
		t.Fatal("sibling never flushed — one bad guest stalled Algorithm 1")
	}
	if rt2.G.Disk("xvda").Cache.DirtyPages() != 0 {
		t.Fatal("sibling cache not drained")
	}
	// Recovery: syncs work again, heartbeats were never interrupted, so
	// after the penalty the guest is restored and finally drained.
	d1.SetSyncFault(nil)
	k.RunUntil(8 * sim.Second)
	if m.Counters().Restores == 0 {
		t.Fatal("guest never restored after penalty")
	}
	if !m.Cooperative(rt1.G.ID()) {
		t.Fatal("recovered guest still non-cooperative")
	}
	if rt1.G.Disk("xvda").Cache.DirtyPages() != 0 {
		t.Fatal("recovered guest's cache not drained")
	}
	if d1.Flushes() == 0 {
		t.Fatal("recovered guest never handled a flush order")
	}
}

// A crashed driver stops heartbeating; the manager must demote the guest
// at the next decision site, and a driver re-registration (module reload)
// must restore it immediately — no penalty wait.
func TestCrashedDriverFallsBackAndRestartRestores(t *testing.T) {
	k, h, m := mkPlatformCfg(t, Policies{Flush: true}, ManagerConfig{}, 12)
	rt := flushyGuest(h)
	drv := m.EnableGuest(rt)
	dom := rt.G.ID()
	k.RunUntil(500 * sim.Millisecond)
	if !m.Cooperative(dom) {
		t.Fatal("healthy heartbeating guest reported non-cooperative")
	}
	k.At(sim.Second, drv.Crash)
	k.RunUntil(2 * sim.Second)
	if !drv.Crashed() {
		t.Fatal("driver not crashed")
	}
	if m.Cooperative(dom) {
		t.Fatal("guest with 1s-stale heartbeat still cooperative")
	}
	if m.Counters().HeartbeatMisses == 0 || m.Counters().Fallbacks == 0 || !m.InFallback(dom) {
		t.Fatalf("miss/fallback not recorded: misses=%d fallbacks=%d",
			m.Counters().HeartbeatMisses, m.Counters().Fallbacks)
	}
	k.At(k.Now()+500*sim.Millisecond, drv.Restart)
	k.RunUntil(3 * sim.Second)
	if m.Counters().Restores == 0 || m.InFallback(dom) {
		t.Fatalf("re-registration did not restore: restores=%d", m.Counters().Restores)
	}
	if !m.Cooperative(dom) {
		t.Fatal("restarted guest not cooperative")
	}
}

// congestedGuest reproduces the Sec. 2 false-trigger shape: a tiny guest
// queue crosses 7/8 while the host array is uncongested, so the manager
// vetoes and must get release_request through to the guest.
func congestedGuest(k *sim.Kernel, h *hypervisor.Host, m *Manager) (*hypervisor.GuestRuntime, *Driver) {
	rt := h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 30},
		guest.DiskConfig{Name: "xvda", QueueConfig: blkio.Config{Limit: 16, DispatchWindow: 4}})
	drv := m.EnableGuest(rt)
	d := rt.G.Disk("xvda")
	p := rt.G.NewProcess(1)
	k.At(sim.Millisecond, func() {
		for i := 0; i < 40; i++ {
			d.Read(p, 64<<10, false, nil)
		}
	})
	return rt, drv
}

// A lost release notification must be re-published after the ack timeout
// and still reach the guest.
func TestReleaseRetryRecoversLostNotification(t *testing.T) {
	k, h, m := mkPlatformCfg(t, Policies{Congestion: true}, ManagerConfig{}, 13)
	rt, drv := congestedGuest(k, h, m)
	dom := rt.G.ID()
	dropped := 0
	h.Store().SetFaultHooks(&store.FaultHooks{
		Delivery: func(d store.DomID, path string) (sim.Duration, bool) {
			if d == dom && strings.HasSuffix(path, keyReleaseRequest) && dropped < 1 {
				dropped++
				return 0, true
			}
			return 0, false
		},
	})
	k.RunUntil(3 * sim.Second)
	if dropped == 0 {
		t.Fatal("fault never injected")
	}
	if m.Counters().ReleaseRetries == 0 {
		t.Fatal("lost release never retried")
	}
	if drv.Releases() == 0 {
		t.Fatal("guest never released despite retry")
	}
	if m.Counters().ReleaseTimeouts != 0 || m.InFallback(dom) {
		t.Fatal("single lost delivery must not exhaust retries")
	}
	if got := rt.G.Disk("xvda").Queue.Completed(); got != 40 {
		t.Fatalf("completed %d/40", got)
	}
}

// A guest that never acks exhausts the bounded retries, falls back, and
// the workload still completes on the kernel's local self-lift — the
// Baseline path.
func TestNeverAckingGuestFallsBackAndCompletes(t *testing.T) {
	k, h, m := mkPlatformCfg(t, Policies{Congestion: true}, ManagerConfig{}, 14)
	rt, _ := congestedGuest(k, h, m)
	dom := rt.G.ID()
	h.Store().SetFaultHooks(&store.FaultHooks{
		Delivery: func(d store.DomID, path string) (sim.Duration, bool) {
			// Every release delivery to the guest is lost: the driver can
			// never act, the manager must give up on its own.
			return 0, d == dom && strings.HasSuffix(path, keyReleaseRequest)
		},
	})
	k.RunUntil(5 * sim.Second)
	if m.Counters().ReleaseRetries == 0 || m.Counters().ReleaseTimeouts == 0 {
		t.Fatalf("retries=%d timeouts=%d, want both > 0",
			m.Counters().ReleaseRetries, m.Counters().ReleaseTimeouts)
	}
	if m.Counters().Fallbacks == 0 {
		t.Fatal("never-acking guest never demoted")
	}
	// The driver itself is alive and heartbeating (only its release
	// notifications are lost), so after FallbackPenalty the heartbeat path
	// legitimately restores it — InFallback may be false again by now.
	if got := rt.G.Disk("xvda").Queue.Completed(); got != 40 {
		t.Fatalf("completed %d/40 — degradation stalled the guest's own I/O", got)
	}
}

func TestDisableGuestForgetsDegradationState(t *testing.T) {
	k, h, m := mkPlatformCfg(t, Policies{Flush: true}, ManagerConfig{}, 15)
	rt := flushyGuest(h)
	drv := m.EnableGuest(rt)
	dom := rt.G.ID()
	k.At(sim.Second, drv.Crash)
	k.RunUntil(2 * sim.Second)
	if m.Cooperative(dom) {
		t.Fatal("crashed guest cooperative")
	}
	m.DisableGuest(dom)
	if m.Driver(dom) != nil || m.InFallback(dom) {
		t.Fatal("DisableGuest left state behind")
	}
	// Counters keep their history; a fresh guest starts clean.
	rt2 := flushyGuest(h)
	m.EnableGuest(rt2)
	k.RunUntil(3 * sim.Second)
	if !m.Cooperative(rt2.G.ID()) {
		t.Fatal("fresh guest not cooperative")
	}
}

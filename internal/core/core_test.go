package core

import (
	"testing"

	"iorchestra/internal/blkio"
	"iorchestra/internal/device"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
)

func mkPlatform(t *testing.T, hcfg hypervisor.Config, pol Policies, seed uint64) (*sim.Kernel, *hypervisor.Host, *Manager) {
	t.Helper()
	k := sim.NewKernel()
	rng := stats.NewStream(seed, "platform")
	h := hypervisor.New(k, hcfg, rng.Fork("host"))
	m := NewManager(h, pol, ManagerConfig{}, rng.Fork("mgr"))
	return k, h, m
}

func TestFlushPolicyDrainsDirtyPagesDuringIdle(t *testing.T) {
	k, h, m := mkPlatform(t, hypervisor.Config{}, Policies{Flush: true}, 1)
	rt := h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 30},
		guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
			// Long flusher period and generous ratios: without IOrchestra
			// nothing would flush for 30+ seconds.
			WakeInterval: 30 * sim.Second, DirtyRatio: 0.9, BackgroundRatio: 0.8,
		}})
	drv := m.EnableGuest(rt)
	d := rt.G.Disk("xvda")
	p := rt.G.NewProcess(1)
	k.At(sim.Millisecond, func() { d.Write(p, 32<<20, nil) })
	k.RunUntil(2 * sim.Second)
	if d.Cache.DirtyPages() != 0 {
		t.Fatalf("dirty pages after idle period: %d", d.Cache.DirtyPages())
	}
	if m.Counters().FlushNotices == 0 {
		t.Fatal("management module never issued flush_now")
	}
	if drv.Flushes() == 0 {
		t.Fatal("guest driver never handled flush_now")
	}
	// flush_now was reset by the guest.
	if v, _ := h.Store().ReadBool(store.Dom0, absDiskKey(rt.G.ID(), "xvda", keyFlushNow)); v {
		t.Fatal("flush_now not reset")
	}
}

func TestFlushPolicyPicksArgmaxDirty(t *testing.T) {
	k, h, m := mkPlatform(t, hypervisor.Config{}, Policies{Flush: true}, 2)
	mk := func() *hypervisor.GuestRuntime {
		return h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 30},
			guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
				WakeInterval: 60 * sim.Second, DirtyRatio: 0.9, BackgroundRatio: 0.8,
			}})
	}
	rt1, rt2 := mk(), mk()
	d1, d2 := m.EnableGuest(rt1), m.EnableGuest(rt2)
	p1 := rt1.G.NewProcess(1)
	p2 := rt2.G.NewProcess(1)
	k.At(sim.Millisecond, func() {
		rt1.G.Disk("xvda").Write(p1, 16<<20, nil) // 4096 dirty pages
		rt2.G.Disk("xvda").Write(p2, 64<<20, nil) // 16384 dirty pages
	})
	// Run long enough for the first flush decision (the manager waits out
	// the dirty-set growth guard before acting).
	k.RunUntil(400 * sim.Millisecond)
	if d2.Flushes() == 0 {
		t.Fatalf("guest with most dirty pages not flushed first (d1=%d d2=%d)",
			d1.Flushes(), d2.Flushes())
	}
	if d1.Flushes() != 0 {
		t.Fatal("smaller guest flushed before argmax guest")
	}
	k.RunUntil(5 * sim.Second)
	// Eventually both drain.
	if rt1.G.Disk("xvda").Cache.DirtyPages() != 0 || rt2.G.Disk("xvda").Cache.DirtyPages() != 0 {
		t.Fatal("caches not drained")
	}
}

func TestCongestionVetoReleasesQueue(t *testing.T) {
	// A tiny queue limit makes the guest cross its 7/8 threshold while
	// the big host array stays uncongested — the false trigger from
	// Sec. 2. The manager must veto and release the producers.
	k, h, m := mkPlatform(t, hypervisor.Config{}, Policies{Congestion: true}, 3)
	rt := h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 30},
		guest.DiskConfig{Name: "xvda", QueueConfig: blkio.Config{Limit: 16, DispatchWindow: 4}})
	drv := m.EnableGuest(rt)
	d := rt.G.Disk("xvda")
	p := rt.G.NewProcess(1)
	k.At(sim.Millisecond, func() {
		for i := 0; i < 40; i++ {
			d.Read(p, 64<<10, false, nil)
		}
	})
	k.RunUntil(2 * sim.Second)
	if m.Counters().Vetoes == 0 {
		t.Fatalf("manager never vetoed a false congestion trigger (confirms=%d)", m.Counters().Confirms)
	}
	if drv.Releases() == 0 {
		t.Fatal("guest driver never released the queue")
	}
	if got := d.Queue.Completed(); got != 40 {
		t.Fatalf("completed %d/40 requests", got)
	}
	if d.Queue.AvoidanceEngaged() {
		t.Fatal("avoidance still engaged at the end")
	}
}

func TestCongestionConfirmAndRelief(t *testing.T) {
	// A genuinely congested host device: the manager confirms, holds the
	// VM, and releases it FIFO-with-stagger once the device drains.
	k := sim.NewKernel()
	rng := stats.NewStream(6, "platform")
	ssdCfg := device.Intel520Config("slow")
	ssdCfg.SeqReadBps = 20e6 // slow device so its queue really fills
	ssdCfg.JitterFrac = 0
	ssdCfg.WriteTailOdds = 0
	ssdCfg.QueueLimit = 32
	dev := device.NewSSD(k, ssdCfg, rng.Fork("dev"))
	h := hypervisor.New(k, hypervisor.Config{Device: dev, MaxDeviceInFlight: 64}, rng.Fork("host"))
	m := NewManager(h, Policies{Congestion: true}, ManagerConfig{}, rng.Fork("mgr"))
	rt := h.CreateGuest(guest.Config{VCPUs: 1, MemBytes: 1 << 30},
		guest.DiskConfig{Name: "xvda", QueueConfig: blkio.Config{Limit: 64, DispatchWindow: 64}})
	m.EnableGuest(rt)
	d := rt.G.Disk("xvda")
	p := rt.G.NewProcess(1)
	k.At(sim.Millisecond, func() {
		for i := 0; i < 80; i++ {
			d.Read(p, 256<<10, false, nil)
		}
	})
	k.RunUntil(30 * sim.Second)
	if m.Counters().Confirms == 0 {
		t.Fatalf("manager never confirmed real congestion (vetoes=%d)", m.Counters().Vetoes)
	}
	if m.Counters().Relieves == 0 {
		t.Fatal("held VM never relieved after device drained")
	}
	if got := d.Queue.Completed(); got != 80 {
		t.Fatalf("completed %d/80", got)
	}
}

func TestCoschedPublishesTargetsAndQuanta(t *testing.T) {
	k, h, m := mkPlatform(t, hypervisor.Config{
		Mode: hypervisor.ModeDedicated, RouteBySocket: true, Sockets: 2, CoresPerSocket: 2,
		// Slow polling cores: on-core latency must exceed the manager's
		// contention gate for redistribution targets to be published.
		IOCoreCostPerReq: 50 * sim.Microsecond, IOCoreBps: 5e8,
	}, Policies{Cosched: true}, 4)
	// 2 sockets × 2 cores, core 0 reserved per socket → a 2-VCPU guest
	// spans both sockets.
	rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 4 << 30})
	drv := m.EnableGuest(rt)
	d := rt.G.Disk("xvda")
	// All I/O processes start on socket of vcpu0: imbalanced.
	procs := make([]*guest.Process, 4)
	for i := range procs {
		procs[i] = rt.G.NewProcess(1)
	}
	drv.PublishWeights()
	// Generate traffic so cores observe latencies.
	var issue func()
	n := 0
	issue = func() {
		if n >= 2000 {
			return
		}
		n++
		d.Read(procs[n%4], 64<<10, false, issue)
	}
	k.At(sim.Millisecond, func() { issue(); issue(); issue(); issue() })
	k.RunUntil(4 * sim.Second)
	if m.Counters().CoschedRuns == 0 {
		t.Fatal("cosched never ran")
	}
	// Targets were published for both sockets.
	for _, s := range rt.G.Sockets() {
		f, err := h.Store().ReadFloat(store.Dom0,
			store.DomainPath(rt.G.ID())+"/"+socketKey(keyTargetPrefix, s), -1)
		if err != nil || f < 0 || f > 1 {
			t.Fatalf("target for socket %d = %v, %v", s, f, err)
		}
	}
	// Quanta were applied on the cores.
	q0 := h.IOCores()[0].Quantum(rt.G.ID())
	q1 := h.IOCores()[1].Quantum(rt.G.ID())
	if q0 == 256<<10 && q1 == 256<<10 {
		t.Fatal("quanta never updated from defaults")
	}
}

func TestManagerCountersStartZero(t *testing.T) {
	_, _, m := mkPlatform(t, hypervisor.Config{}, All(), 5)
	if m.Counters().FlushNotices != 0 || m.Counters().Vetoes != 0 || m.Counters().Confirms != 0 ||
		m.Counters().Relieves != 0 || m.Counters().CoschedRuns != 0 {
		t.Fatal("counters not zeroed")
	}
}

package core

import (
	"testing"

	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// BenchmarkManagerTick measures the steady-state cost of one management
// check interval (50 ms of simulated time) with 8 enabled guests under a
// sustained dirtying workload, once per policy and once with all three —
// the decision loops plus the store/watch traffic they trigger.
func BenchmarkManagerTick(b *testing.B) {
	cases := []struct {
		name string
		pol  Policies
	}{
		{"flush", Policies{Flush: true}},
		{"congestion", Policies{Congestion: true}},
		{"cosched", Policies{Cosched: true}},
		{"all", All()},
	}
	for _, bc := range cases {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			k := sim.NewKernel()
			rng := stats.NewStream(7, "bench")
			h := hypervisor.New(k, hypervisor.Config{}, rng.Fork("host"))
			m := NewManager(h, bc.pol, ManagerConfig{}, rng.Fork("mgr"))
			for i := 0; i < 8; i++ {
				rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 1 << 30},
					guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
						WakeInterval: 30 * sim.Second, DirtyRatio: 0.9, BackgroundRatio: 0.8,
					}})
				m.EnableGuest(rt)
				d := rt.G.Disk("xvda")
				p := rt.G.NewProcess(1)
				// Self-rescheduling writer keeps dirty pages and queue
				// pressure present for as long as the benchmark runs.
				var write func()
				write = func() {
					d.Write(p, 1<<20, nil)
					k.After(10*sim.Millisecond, write)
				}
				k.After(sim.Duration(i+1)*sim.Millisecond, write)
			}
			// Reach steady state before timing.
			k.RunUntil(sim.Second)
			now := k.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 50 * sim.Millisecond
				k.RunUntil(now)
			}
		})
	}
}

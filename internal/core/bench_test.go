package core

import (
	"fmt"
	"testing"

	"iorchestra/internal/gstate"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

// benchHost builds one host with n enabled guests under a sustained
// dirtying workload: each guest runs a self-rescheduling writer so
// dirty pages and queue pressure stay present for as long as the
// benchmark runs.
func benchHost(n int, pol Policies) *sim.Kernel {
	k := sim.NewKernel()
	rng := stats.NewStream(7, "bench")
	h := hypervisor.New(k, hypervisor.Config{}, rng.Fork("host"))
	m := NewManager(h, pol, ManagerConfig{}, rng.Fork("mgr"))
	for i := 0; i < n; i++ {
		rt := h.CreateGuest(guest.Config{VCPUs: 2, MemBytes: 1 << 30},
			guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
				WakeInterval: 30 * sim.Second, DirtyRatio: 0.9, BackgroundRatio: 0.8,
			}})
		if pol.GState {
			// Declare a round-robin tier mix before EnableGuest so the
			// G-state controller's synchronous Attach sees the SLA.
			tier := []gstate.Tier{gstate.Gold, gstate.Silver, gstate.Bronze}[i%3]
			gstate.PublishSLA(h.Store(), rt.G.ID(), tier, gstate.SLA{})
		}
		m.EnableGuest(rt)
		d := rt.G.Disk("xvda")
		p := rt.G.NewProcess(1)
		var write func()
		write = func() {
			d.Write(p, 1<<20, nil)
			k.After(10*sim.Millisecond, write)
		}
		// Stagger starts across the write interval (offset is a pure
		// function of i so the build is deterministic at any scale).
		k.After(sim.Duration(1+i%10)*sim.Millisecond+sim.Duration(i/10)*sim.Microsecond, write)
	}
	return k
}

// BenchmarkManagerTick measures the steady-state cost of one management
// check interval (50 ms of simulated time) under a sustained dirtying
// workload — the decision loops plus the store/watch traffic they
// trigger. Per policy at the historical 8-guest scale, then the full
// policy set at 100 and 1000 guests, where the incremental control-plane
// structures (Algorithm 1's eligibility index, the congestion verdict
// set) carry the load; cmd/sim-bench scales the same scenario across
// parallel per-host kernels.
func BenchmarkManagerTick(b *testing.B) {
	cases := []struct {
		name   string
		guests int
		pol    Policies
	}{
		{"flush", 8, Policies{Flush: true}},
		{"congestion", 8, Policies{Congestion: true}},
		{"cosched", 8, Policies{Cosched: true}},
		{"gstate", 8, Policies{GState: true}},
		{"gstate", 100, Policies{GState: true}},
		{"gstate", 1000, Policies{GState: true}},
		{"all", 8, All()},
		{"all", 100, All()},
		{"all", 1000, All()},
	}
	for _, bc := range cases {
		bc := bc
		b.Run(fmt.Sprintf("%s/%dguests", bc.name, bc.guests), func(b *testing.B) {
			k := benchHost(bc.guests, bc.pol)
			// Reach steady state before timing.
			k.RunUntil(sim.Second)
			now := k.Now()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now += 50 * sim.Millisecond
				k.RunUntil(now)
			}
		})
	}
}

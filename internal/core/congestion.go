package core

import (
	"strconv"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

type congEntry struct {
	dom   store.DomID
	disk  string
	since sim.Time // when the guest was confirmed held (HoldDeadline clock)
}

// congKey identifies one held (guest, disk) pair for O(1) dedup.
type congKey struct {
	dom  store.DomID
	disk string
}

// releaseState tracks an unacknowledged release_request.
type releaseState struct {
	disk    string
	retries int
	timer   *sim.Event
}

// congestController is Algorithm 2, collaborative congestion control: it
// answers guest congestion queries with the host's verdict, keeps
// confirmed-held guests on a relief cadence, and releases them in FIFO
// order with a random stagger once the host device decongests. The
// stagger draws come from the manager's stream, in hold order, so
// fixed-seed runs replay identically.
type congestController struct {
	m   *Manager
	cfg *ManagerConfig
	mon *hypervisor.Monitor

	relief cadence

	// held is FIFO in confirm order, so since is monotone along it:
	// HoldDeadline expiry is always a prefix, and the expiry check stops
	// at the first live entry instead of scanning every held guest.
	// heldSet mirrors membership for O(1) dedup on re-confirms.
	held       []congEntry
	heldSet    map[congKey]bool
	pendingRel map[store.DomID]*releaseState

	vetoes          uint64
	confirms        uint64
	relieves        uint64
	releaseRetries  uint64
	releaseTimeouts uint64
	holdTimeouts    uint64
}

func newCongestController(m *Manager) *congestController {
	cc := &congestController{
		m:          m,
		cfg:        &m.cfg,
		mon:        m.h.Monitor(),
		heldSet:    map[congKey]bool{},
		pendingRel: map[store.DomID]*releaseState{},
	}
	cc.relief = cadence{k: m.k, period: m.cfg.CongestionCheckInterval, tick: func() bool {
		cc.congestionTick()
		return len(cc.held) > 0
	}}
	return cc
}

func (cc *congestController) Name() string { return "congestion" }

// Attach: congestion control needs no per-guest hooks beyond the shared
// driver; guests ask through congest_query when their queues fill.
func (cc *congestController) Attach(rt *hypervisor.GuestRuntime) {}

// Detach forgets all congestion state about dom.
func (cc *congestController) Detach(dom store.DomID) {
	if rs := cc.pendingRel[dom]; rs != nil {
		cc.m.k.Cancel(rs.timer)
		delete(cc.pendingRel, dom)
	}
	kept := cc.held[:0]
	for _, e := range cc.held {
		if e.dom != dom {
			kept = append(kept, e)
		} else {
			delete(cc.heldSet, congKey{dom: e.dom, disk: e.disk})
		}
	}
	cc.held = kept
}

// Routes: the per-disk query key plus the per-domain release key (the
// guest's reset to 0 is the ack).
func (cc *congestController) Routes() Routes {
	return Routes{
		DiskKeys:   []string{keyCongestQuery},
		DomainKeys: []string{keyReleaseRequest},
	}
}

func (cc *congestController) OnStoreEvent(ev StoreEvent) {
	switch ev.Key {
	case keyCongestQuery:
		if ev.Value == "1" {
			cc.handleCongestQuery(ev.Dom, ev.Disk)
		}
	case keyReleaseRequest:
		// The manager writes "1"; the guest's reset to "0" is the ack.
		if ev.Value == "0" {
			cc.noteReleaseAck(ev.Dom)
		}
	}
}

// OnFallback stops expecting acks from a guest we no longer trust, and
// publishes one last best-effort release if the guest was held: a
// live-but-slow driver will act on it; a dead one leaves its queues to
// the local controller. Nothing may stay parked behind a dead protocol.
func (cc *congestController) OnFallback(dom store.DomID) {
	if rs := cc.pendingRel[dom]; rs != nil {
		cc.m.k.Cancel(rs.timer)
		delete(cc.pendingRel, dom)
	}
	var wasHeld bool
	kept := cc.held[:0]
	for _, e := range cc.held {
		if e.dom == dom {
			wasHeld = true
			delete(cc.heldSet, congKey{dom: e.dom, disk: e.disk})
		} else {
			kept = append(kept, e)
		}
	}
	cc.held = kept
	if wasHeld {
		cc.m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest, true)
	}
}

// OnRestore: a restored guest starts with a clean slate; nothing to do.
func (cc *congestController) OnRestore(dom store.DomID) {}

// handleCongestQuery answers a guest's congestion query: confirm when the
// host device is genuinely overcrowded, otherwise release the guest.
func (cc *congestController) handleCongestQuery(dom store.DomID, disk string) {
	m := cc.m
	if !m.live.cooperative(dom) {
		// No verdict for a fallback guest: its kernel's local avoidance
		// (engage at 7/8, release below 13/16) is exactly Baseline.
		return
	}
	// Reset the query flag so subsequent queries re-fire the watch.
	m.st.WriteBool(store.Dom0, absDiskKey(dom, disk, keyCongestQuery), false)
	if cc.mon.IOCongested() {
		cc.confirms++
		cc.recordCongestion(trace.KindCongestConfirm, dom, disk)
		m.st.WriteBool(store.Dom0, absDiskKey(dom, disk, keyCongested), true)
		key := congKey{dom: dom, disk: disk}
		if cc.heldSet[key] {
			return
		}
		cc.heldSet[key] = true
		cc.held = append(cc.held, congEntry{dom: dom, disk: disk, since: m.k.Now()})
		cc.relief.arm()
		return
	}
	cc.vetoes++
	cc.requestRelease(dom, disk, trace.KindCongestVeto)
}

// requestRelease records the verdict, publishes release_request=1 and
// arms the bounded ack-retry machinery: a lost notification must not
// leave the guest's producers parked forever.
func (cc *congestController) requestRelease(dom store.DomID, disk string, kind trace.Kind) {
	cc.recordCongestion(kind, dom, disk)
	cc.m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest, true)
	cc.armReleaseRetry(dom, disk)
}

func (cc *congestController) armReleaseRetry(dom store.DomID, disk string) {
	if cc.cfg.ReleaseAckTimeout <= 0 || cc.pendingRel[dom] != nil {
		return
	}
	rs := &releaseState{disk: disk}
	cc.pendingRel[dom] = rs
	rs.timer = cc.m.k.After(cc.cfg.ReleaseAckTimeout, func() { cc.releaseRetryTick(dom, rs) })
}

func (cc *congestController) releaseRetryTick(dom store.DomID, rs *releaseState) {
	m := cc.m
	if cc.pendingRel[dom] != rs {
		return
	}
	// The guest resets release_request to 0 when it acts; a still-set key
	// means the order (or its notification) was lost.
	if v, _ := m.st.ReadBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest); !v {
		delete(cc.pendingRel, dom)
		return
	}
	if rs.retries >= cc.cfg.ReleaseMaxRetries {
		delete(cc.pendingRel, dom)
		cc.releaseTimeouts++
		if m.rec != nil {
			m.rec.Record(trace.Record{
				Kind: trace.KindReleaseTimeout, Dom: int(dom), Disk: rs.disk,
				Value: strconv.Itoa(rs.retries),
			})
		}
		m.live.enterFallback(dom, "release-deadline")
		return
	}
	rs.retries++
	cc.releaseRetries++
	if m.rec != nil {
		m.rec.Record(trace.Record{
			Kind: trace.KindReleaseRetry, Dom: int(dom), Disk: rs.disk,
			Value: strconv.Itoa(rs.retries),
		})
	}
	// Re-publish: the write re-fires the guest's watch even though the
	// value does not change.
	m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest, true)
	rs.timer = m.k.After(cc.cfg.ReleaseAckTimeout, func() { cc.releaseRetryTick(dom, rs) })
}

func (cc *congestController) noteReleaseAck(dom store.DomID) {
	if rs := cc.pendingRel[dom]; rs != nil {
		cc.m.k.Cancel(rs.timer)
		delete(cc.pendingRel, dom)
	}
}

// recordCongestion traces an Algorithm 2 verdict with the host queue
// depths that justified it.
func (cc *congestController) recordCongestion(kind trace.Kind, dom store.DomID, disk string) {
	m := cc.m
	if m.rec == nil {
		return
	}
	m.rec.Record(trace.Record{
		Kind: kind, Dom: int(dom), Disk: disk,
		QueueDepth: cc.mon.QueueBacklog(),
		DevPending: cc.mon.DevPending(),
	})
}

// congestionTick is Algorithm 2's relief branch: once the host device is
// no longer congested, release held VMs in FIFO order, interleaved with a
// random 0–99 ms stagger.
func (cc *congestController) congestionTick() {
	m := cc.m
	if len(cc.held) == 0 {
		return
	}
	now := m.k.Now()
	if cc.mon.IOCongested() {
		// Still congested — but nobody may be held past HoldDeadline: a
		// device stuck in a degraded state (or a torn congested key)
		// must not park a guest's producers forever. since is monotone
		// along held, so the expired set is a prefix: the check is O(1)
		// when nothing expired, not a scan over every held guest.
		if cc.cfg.HoldDeadline <= 0 {
			return
		}
		cut := 0
		for cut < len(cc.held) && now-cc.held[cut].since >= cc.cfg.HoldDeadline {
			e := cc.held[cut]
			cut++
			delete(cc.heldSet, congKey{dom: e.dom, disk: e.disk})
			cc.holdTimeouts++
			cc.requestRelease(e.dom, e.disk, trace.KindHoldTimeout)
		}
		if cut > 0 {
			cc.held = append(cc.held[:0], cc.held[cut:]...)
		}
		return
	}
	var offset sim.Duration
	for _, e := range cc.held {
		dom, disk := e.dom, e.disk
		delete(cc.heldSet, congKey{dom: dom, disk: disk})
		cc.relieves++
		m.k.After(offset, func() {
			cc.requestRelease(dom, disk, trace.KindCongestRelease)
		})
		offset += sim.Duration(m.rng.Int63n(int64(cc.cfg.ReleaseStaggerMax)))
	}
	cc.held = cc.held[:0]
}

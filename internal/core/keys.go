// Package core implements IOrchestra itself: the guest-side system-store
// driver, the hypervisor-side monitoring and management modules, and the
// three collaborative I/O policies the paper builds on top of them —
// cross-domain dirty-page flush control (Sec. 3.1, Algorithm 1),
// collaborative congestion control (Sec. 3.2, Algorithm 2), and
// inter-domain I/O co-scheduling with dedicated polling cores (Sec. 3.3,
// Algorithm 3).
//
// The control plane is ordinary Go code exchanging state through the
// system store exactly as the prototype does through XenStore; only the
// kernels it manages are simulated.
package core

import (
	"fmt"

	"iorchestra/internal/store"
)

// Store key suffixes, relative to /local/domain/<id>. The guest driver
// creates every key it owns at registration time so that the management
// module can write to guest-owned nodes (Dom0 always may) while the guest
// retains the ability to reset them.
const (
	// Per-disk keys (under virt-dev/<disk>/).
	keyHasDirty     = "has_dirty_pages"
	keyNrDirty      = "nr_dirty"
	keyFlushNow     = "flush_now"
	keyCongestQuery = "congest_query"
	keyCongested    = "congested"

	// Per-domain keys.
	keyReleaseRequest = "release_request"

	// Co-scheduling keys (under io/).
	keyWeightPrefix = "io/weight"       // io/weight/<socket> = W_SKT
	keyTotalWeight  = "io/total_weight" // Σ P_l
	keyVMShare      = "io/vm_share"     // S^(VM)_i
	keySharePrefix  = "io/share"        // io/share/<socket> = S_SKT (mgmt)
	keyTargetPrefix = "io/target"       // io/target/<socket> = weight fraction (mgmt)
)

// diskKey builds the relative path of a per-disk key.
func diskKey(disk, key string) string { return "virt-dev/" + disk + "/" + key }

// socketKey builds the relative path of a per-socket key.
func socketKey(prefix string, socket int) string {
	return fmt.Sprintf("%s/%d", prefix, socket)
}

// absDiskKey builds the absolute path of a per-disk key for a domain.
func absDiskKey(dom store.DomID, disk, key string) string {
	return store.DomainPath(dom) + "/" + diskKey(disk, key)
}

// Package core implements IOrchestra itself: the guest-side system-store
// driver, the hypervisor-side monitoring and management modules, and the
// three collaborative I/O policies the paper builds on top of them —
// cross-domain dirty-page flush control (Sec. 3.1, Algorithm 1),
// collaborative congestion control (Sec. 3.2, Algorithm 2), and
// inter-domain I/O co-scheduling with dedicated polling cores (Sec. 3.3,
// Algorithm 3).
//
// The control plane is ordinary Go code exchanging state through the
// system store exactly as the prototype does through XenStore; only the
// kernels it manages are simulated.
package core

import (
	"fmt"

	"iorchestra/internal/store"
)

// Store key suffixes, relative to /local/domain/<id>. The guest driver
// creates every key it owns at registration time so that the management
// module can write to guest-owned nodes (Dom0 always may) while the guest
// retains the ability to reset them.
//
// docs/STORE_KEYS.md is the normative reference: for each key it gives
// the writer, readers, value format, watch semantics and the paper
// section it implements. The comments here are the short form.
const (
	// keyHasDirty (bool, under virt-dev/<disk>/) — guest-written presence
	// bit for dirty pages; transitions publish immediately so the
	// manager's flush candidate set is always current (Algorithm 1).
	keyHasDirty = "has_dirty_pages"
	// keyNrDirty (int pages) — the guest's dirty-page count nr_i,
	// rate-limited to one write per Driver.NrUpdateInterval; the manager
	// picks argmax_i nr_i among eligible flush candidates (Algorithm 1).
	keyNrDirty = "nr_dirty"
	// keyFlushNow (bool) — set by the manager to order a sync() when the
	// device is near-idle; reset by the guest after flushing
	// (Algorithm 1, notified branch).
	keyFlushNow = "flush_now"
	// keyCongestQuery (bool) — set by the guest when its queue crosses
	// the 7/8 congestion threshold, asking whether the host is actually
	// congested; reset by the manager before answering so the next query
	// re-fires the watch (Algorithm 2).
	keyCongestQuery = "congest_query"
	// keyCongested (bool) — the manager's standing verdict for the disk:
	// set on confirm, cleared by the guest on release (Algorithm 2).
	keyCongested = "congested"

	// keyReleaseRequest (bool, per-domain) — set by the manager on a veto
	// (immediately) or on relief (FIFO with 0–99 ms stagger); the guest
	// releases every disk queue and resets it (Algorithm 2).
	keyReleaseRequest = "release_request"

	// keyWeightPrefix (float, io/weight/<socket>) — guest-published
	// per-socket I/O process weight W_SKT (Sec. 3.3).
	keyWeightPrefix = "io/weight"
	// keyTotalWeight (float) — guest-published total I/O process weight
	// Σ P_l, the share denominator (Sec. 3.3).
	keyTotalWeight = "io/total_weight"
	// keyVMShare (float) — operator-assigned VM share S^(VM)_i of host
	// I/O capacity; the manager defaults to an equal split when absent.
	keyVMShare = "io/vm_share"
	// keySharePrefix (float, io/share/<socket>) — manager-published
	// per-socket share S_SKT = S^(VM)·W_SKT/ΣP, for observability.
	keySharePrefix = "io/share"
	// keyTargetPrefix (float, io/target/<socket>) — manager-published
	// weight-fraction targets, inversely proportional to per-core
	// latency; the guest migrates one I/O process per update toward them
	// (Sec. 3.3).
	keyTargetPrefix = "io/target"

	// keyDriverPresent (bool, iorchestra/driver) — written "1" by the
	// guest driver at registration and again on every restart; the
	// manager treats the write as proof of a live, collaborative driver
	// and immediately restores a fallen-back guest.
	keyDriverPresent = "iorchestra/driver"
	// keyHeartbeat (int, iorchestra/heartbeat) — monotonic counter the
	// guest driver bumps every Driver.HeartbeatInterval (default 100 ms).
	// The manager's liveness signal: a beat older than HeartbeatTimeout
	// demotes the guest to Baseline behavior.
	keyHeartbeat = "iorchestra/heartbeat"
	// keySLAState (int, sla/state) — manager-published current G-state
	// index (0 = G0, docs/GSTATES.md); the guest driver watches it and
	// scales its congestion thresholds by the state's weight. The rest of
	// the /sla subtree (tier, targets) belongs to internal/gstate.
	keySLAState = "sla/state"

	// keyFallback (bool, iorchestra/fallback) — manager-written mirror of
	// the guest's degradation state ("1" while the guest is treated as
	// Baseline), published for operators and the trace CLI; nothing in
	// the control plane reads it back.
	keyFallback = "iorchestra/fallback"
)

// diskKey builds the relative path of a per-disk key.
func diskKey(disk, key string) string { return "virt-dev/" + disk + "/" + key }

// socketKey builds the relative path of a per-socket key.
func socketKey(prefix string, socket int) string {
	return fmt.Sprintf("%s/%d", prefix, socket)
}

// absDiskKey builds the absolute path of a per-disk key for a domain.
func absDiskKey(dom store.DomID, disk, key string) string {
	return store.DiskPath(dom, disk, key)
}

package core

import (
	"strconv"
	"strings"

	"iorchestra/internal/blkio"
	"iorchestra/internal/bus"
	"iorchestra/internal/gstate"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Driver is the guest-side IOrchestra component ("system store driver" in
// Fig. 2): it registers the guest's keys and callbacks at initialization,
// mirrors dirty-page state into the store, implements the collaborative
// congestion controller for each virtual disk, reacts to flush_now and
// release_request notifications, and applies co-scheduling weight targets
// by migrating I/O processes between sockets.
type Driver struct {
	k   *sim.Kernel
	g   *guest.Guest
	dom bus.Conn
	rng *stats.Stream
	rec *trace.Recorder // host's decision-trace recorder (may be nil)

	disks map[string]*diskDriver

	// QueryInterval rate-limits congestion queries per disk (default 5 ms).
	QueryInterval sim.Duration
	// ReleaseGrace is how long a host "not congested" verdict remains
	// valid: within it, local congestion triggers are suppressed instead
	// of re-queried (default 50 ms).
	ReleaseGrace sim.Duration
	// NrUpdateInterval rate-limits nr_dirty store updates (default 50 ms).
	NrUpdateInterval sim.Duration
	// HeartbeatInterval paces the iorchestra/heartbeat counter the
	// manager uses for liveness (default 100 ms; <= 0 disables).
	HeartbeatInterval sim.Duration

	// Liveness machinery and fault-injection state.
	watchID   store.WatchID
	hb        *sim.Ticker
	hbCount   int64
	crashed   bool
	syncFault func(disk string) bool // non-nil only under fault injection

	// Stats.
	flushes    uint64
	releases   uint64
	rebalance  uint64
	stuckSyncs uint64
}

type diskDriver struct {
	drv  *Driver
	name string
	v    *guest.VDisk

	// Relative store keys, formatted once: the dirty mirror and the
	// congestion handshake hit them on every state change, and the
	// per-call concatenations dominated the driver in profiles at scale.
	kHasDirty     string
	kNrDirty      string
	kFlushNow     string
	kCongestQuery string
	kCongested    string

	lastQuery     sim.Time
	everQueried   bool
	releasedUntil sim.Time
	nrTimer       *sim.Event
	pendingNr     int64
	havePending   bool
}

// NewDriver installs the IOrchestra driver into a guest on host h. It
// must run after the guest's disks are attached: each disk's congestion
// controller is replaced with the collaborative one, dirty-page state is
// mirrored to the store, and all watches are registered.
func NewDriver(h *hypervisor.Host, rt *hypervisor.GuestRuntime, rng *stats.Stream) *Driver {
	drv := &Driver{
		k:                 h.Kernel(),
		g:                 rt.G,
		dom:               rt.Dom,
		rng:               rng,
		rec:               h.Recorder(),
		disks:             map[string]*diskDriver{},
		QueryInterval:     5 * sim.Millisecond,
		ReleaseGrace:      50 * sim.Millisecond,
		NrUpdateInterval:  50 * sim.Millisecond,
		HeartbeatInterval: 100 * sim.Millisecond,
	}
	// Register per-domain keys (guest-owned so both sides can write —
	// nodes created by Dom0 under a guest's subtree would be unreadable
	// to the guest).
	drv.dom.WriteBool(keyReleaseRequest, false)
	drv.dom.WriteInt(keyTotalWeight, 0)
	drv.dom.WriteInt(keyHeartbeat, 0)
	drv.dom.WriteBool(keyFallback, false)
	for _, s := range rt.G.Sockets() {
		drv.dom.WriteFloat(socketKey(keyTargetPrefix, s), -1)
		drv.dom.WriteFloat(socketKey(keySharePrefix, s), -1)
	}
	for _, v := range rt.G.Disks() {
		drv.addDisk(v)
	}
	drv.PublishWeights()
	// One watch over the domain subtree dispatches every notification.
	drv.watchID, _ = drv.dom.Watch("", drv.onStoreEvent)
	// Announce the driver and start heartbeating: the registration write
	// doubles as the first proof of life.
	drv.dom.WriteBool(keyDriverPresent, true)
	drv.startHeartbeat()
	return drv
}

func (drv *Driver) addDisk(v *guest.VDisk) {
	dd := &diskDriver{
		drv: drv, name: v.Name(), v: v,
		kHasDirty:     diskKey(v.Name(), keyHasDirty),
		kNrDirty:      diskKey(v.Name(), keyNrDirty),
		kFlushNow:     diskKey(v.Name(), keyFlushNow),
		kCongestQuery: diskKey(v.Name(), keyCongestQuery),
		kCongested:    diskKey(v.Name(), keyCongested),
	}
	drv.disks[v.Name()] = dd
	// Pre-create guest-owned keys.
	drv.dom.WriteBool(dd.kHasDirty, false)
	drv.dom.WriteInt(dd.kNrDirty, 0)
	drv.dom.WriteBool(dd.kFlushNow, false)
	drv.dom.WriteBool(dd.kCongestQuery, false)
	drv.dom.WriteBool(dd.kCongested, false)
	// Mirror dirty-page state (Algorithm 1's guest half).
	v.Cache.OnDirtyChange = dd.onDirtyChange
	// Collaborative congestion control (Algorithm 2's guest half).
	v.Queue.SetController(dd)
}

// Flushes, Releases, Rebalances report lifetime driver actions.
func (drv *Driver) Flushes() uint64 { return drv.flushes }

// Releases reports collaborative congestion releases handled.
func (drv *Driver) Releases() uint64 { return drv.releases }

// Rebalances reports co-scheduling process redistributions applied.
func (drv *Driver) Rebalances() uint64 { return drv.rebalance }

// StuckSyncs reports flush orders lost to an injected stuck sync().
func (drv *Driver) StuckSyncs() uint64 { return drv.stuckSyncs }

// Crashed reports whether the driver is currently dead.
func (drv *Driver) Crashed() bool { return drv.crashed }

// SetSyncFault installs a fault-injection predicate consulted on every
// flush order; a true return means the sync() sticks forever and
// flush_now is never reset (see internal/fault).
func (drv *Driver) SetSyncFault(fn func(disk string) bool) { drv.syncFault = fn }

// --- Liveness and lifecycle ------------------------------------------------

// startHeartbeat arms the periodic iorchestra/heartbeat write, the
// manager's liveness signal.
func (drv *Driver) startHeartbeat() {
	if drv.HeartbeatInterval <= 0 {
		return
	}
	drv.hb = drv.k.Every(drv.HeartbeatInterval, func() {
		drv.hbCount++
		drv.dom.WriteInt(keyHeartbeat, drv.hbCount)
	})
}

// detach silences the driver: heartbeat stopped, watch torn down, cache
// and queue hooks unhooked, pending nr_dirty timers cancelled.
func (drv *Driver) detach() {
	if drv.hb != nil {
		drv.hb.Stop()
		drv.hb = nil
	}
	drv.dom.Unwatch(drv.watchID)
	for _, dd := range drv.disks {
		dd.v.Cache.OnDirtyChange = nil
		dd.v.Queue.SetController(nil) // back to the kernel's LocalController
		if dd.nrTimer != nil {
			drv.k.Cancel(dd.nrTimer)
			dd.nrTimer = nil
			dd.havePending = false
		}
	}
}

// Crash simulates the driver dying abruptly: everything it registered is
// torn down with no goodbye write, so its store keys go stale exactly as
// a crashed kernel module's XenStore state would. The guest itself keeps
// running on stock Linux behavior — the local congestion controller and
// the page cache's own flusher threads take over.
func (drv *Driver) Crash() {
	if drv.crashed {
		return
	}
	drv.crashed = true
	drv.detach()
}

// Restart re-registers a crashed driver, as a guest reloading the module
// would: hooks reattached, current dirty state republished, watch and
// heartbeat restored, and iorchestra/driver rewritten so the manager
// lifts the guest's fallback immediately.
func (drv *Driver) Restart() {
	if !drv.crashed {
		return
	}
	drv.crashed = false
	for _, name := range sortedNames(drv.disks) {
		dd := drv.disks[name]
		dd.v.Cache.OnDirtyChange = dd.onDirtyChange
		dd.v.Queue.SetController(dd)
		nr := dd.v.Cache.DirtyPages()
		drv.dom.WriteBool(dd.kHasDirty, nr > 0)
		drv.dom.WriteInt(dd.kNrDirty, nr)
		drv.dom.WriteBool(dd.kFlushNow, false)
		drv.dom.WriteBool(dd.kCongestQuery, false)
	}
	drv.watchID, _ = drv.dom.Watch("", drv.onStoreEvent)
	drv.PublishWeights()
	// A release the manager published while we were dead must still be
	// honoured, or the producers it meant to wake stay parked.
	if v, _ := drv.dom.ReadBool(keyReleaseRequest); v {
		drv.handleRelease()
	}
	drv.dom.WriteBool(keyDriverPresent, true)
	drv.startHeartbeat()
}

// Close shuts the driver down for guest removal: like Crash it detaches
// everything, but it is deliberate, so no restart is expected. Managers
// call it through DisableGuest.
func (drv *Driver) Close() {
	if !drv.crashed {
		drv.detach()
		drv.crashed = true
	}
}

// --- Dirty-page mirroring (Algorithm 1, guest side) -----------------------

func (dd *diskDriver) onDirtyChange(nr int64) {
	drv := dd.drv
	if nr == 0 {
		// Transition to clean is always published immediately.
		if dd.nrTimer != nil {
			drv.k.Cancel(dd.nrTimer)
			dd.nrTimer = nil
			dd.havePending = false
		}
		drv.dom.WriteBool(dd.kHasDirty, false)
		drv.dom.WriteInt(dd.kNrDirty, 0)
		return
	}
	// The readback (not a cached mirror) is deliberate: under injected
	// stale writes the published has_dirty can silently diverge from what
	// we last wrote, and re-reading is what retries the lost transition.
	if v, _ := drv.dom.ReadBool(dd.kHasDirty); !v {
		drv.dom.WriteBool(dd.kHasDirty, true)
		drv.dom.WriteInt(dd.kNrDirty, nr)
		return
	}
	// Rate-limit nr updates: remember the latest and flush on a timer.
	dd.pendingNr = nr
	if dd.havePending {
		return
	}
	dd.havePending = true
	dd.nrTimer = drv.k.After(drv.NrUpdateInterval, func() {
		dd.nrTimer = nil
		dd.havePending = false
		if dd.pendingNr > 0 {
			drv.dom.WriteInt(dd.kNrDirty, dd.pendingNr)
		}
	})
}

// --- Collaborative congestion control (Algorithm 2, guest side) -----------

// OnCongested implements blkio.CongestionController: engage avoidance
// locally (conservative) and ask the host whether its I/O subsystem is
// actually congested.
func (dd *diskDriver) OnCongested(q *blkio.Queue) bool {
	drv := dd.drv
	now := drv.k.Now()
	if now < dd.releasedUntil {
		// The host recently ruled the I/O subsystem uncongested; trust
		// that verdict instead of re-engaging avoidance immediately.
		return false
	}
	if !dd.everQueried || now-dd.lastQuery >= drv.QueryInterval {
		dd.everQueried = true
		dd.lastQuery = now
		drv.dom.WriteBool(dd.kCongestQuery, true)
	}
	return true
}

// OnUncongested implements blkio.CongestionController.
func (dd *diskDriver) OnUncongested(q *blkio.Queue) {
	dd.drv.dom.WriteBool(dd.kCongested, false)
}

// --- Store event dispatch --------------------------------------------------

func (drv *Driver) onStoreEvent(rel, value string) {
	switch {
	case strings.HasPrefix(rel, "virt-dev/"):
		rest := rel[len("virt-dev/"):]
		i := strings.IndexByte(rest, '/')
		if i < 0 {
			return
		}
		disk, key := rest[:i], rest[i+1:]
		dd := drv.disks[disk]
		if dd == nil {
			return
		}
		switch key {
		case keyFlushNow:
			if value == "1" {
				dd.handleFlushNow()
			}
		case keyCongested:
			// Host verdict recorded; nothing further to do here — the
			// queue stays in avoidance until release or local drain.
		}
	case rel == keyReleaseRequest:
		if value == "1" {
			drv.handleRelease()
		}
	case rel == keySLAState:
		drv.applyGState(value)
	case strings.HasPrefix(rel, keyTargetPrefix+"/"):
		drv.applyTargets()
	}
}

// handleFlushNow is Algorithm 1's notified branch: trigger sync(), which
// wakes the flusher threads, then reset flush_now.
func (dd *diskDriver) handleFlushNow() {
	drv := dd.drv
	if drv.syncFault != nil && drv.syncFault(dd.name) {
		// Injected stuck sync: the order arrived but the guest's sync()
		// never completes, so flush_now stays set — the manager's flush
		// deadline is the only recovery path.
		drv.stuckSyncs++
		return
	}
	drv.flushes++
	if drv.rec != nil {
		drv.rec.Record(trace.Record{
			Kind: trace.KindFlushSync, Dom: int(drv.g.ID()), Disk: dd.name,
			NrDirty: dd.v.Cache.DirtyPages(),
		})
	}
	dd.v.Cache.Sync(nil)
	drv.dom.WriteBool(dd.kFlushNow, false)
}

// handleRelease is Algorithm 2's release branch: unplug and flush every
// disk's request queue, clear congested flags, reset release_request.
func (drv *Driver) handleRelease() {
	drv.releases++
	until := drv.k.Now() + drv.ReleaseGrace
	for _, name := range sortedNames(drv.disks) {
		dd := drv.disks[name]
		dd.releasedUntil = until
		dd.v.Queue.Release(nil)
		drv.dom.WriteBool(dd.kCongested, false)
	}
	drv.dom.WriteBool(keyReleaseRequest, false)
}

// --- Elastic G-states (docs/GSTATES.md, guest side) ------------------------

// applyGState is the collaborative half of a G-state transition: the
// manager published a new state index under sla/state, and the guest
// answers by scaling every disk queue's congestion thresholds by the
// state's weight — a demoted guest engages avoidance at a
// proportionally smaller backlog, backpressuring its own producers
// before its shrunken device share backs the host queue up.
func (drv *Driver) applyGState(value string) {
	n, err := strconv.Atoi(value)
	if err != nil || n < 0 {
		return
	}
	w := gstate.State(n).Weight()
	for _, name := range sortedNames(drv.disks) {
		drv.disks[name].v.Queue.SetCongestScale(w)
	}
}

// --- Co-scheduling (Sec. 3.3, guest side) ----------------------------------

// PublishWeights writes the per-socket process weights W_SKT and the total
// process weight to the store for the management module.
func (drv *Driver) PublishWeights() {
	weights := drv.g.ProcessWeightBySocket()
	for _, s := range drv.g.Sockets() {
		drv.dom.WriteFloat(socketKey(keyWeightPrefix, s), weights[s])
	}
	drv.dom.WriteFloat(keyTotalWeight, drv.g.TotalProcessWeight())
}

// applyTargets reads the management module's per-socket weight fractions
// and redistributes I/O processes (and their weights) across sockets to
// match — the "registered callback function inside a guest VM" of
// Sec. 3.3.
func (drv *Driver) applyTargets() {
	sockets := drv.g.Sockets()
	if len(sockets) < 2 {
		return
	}
	targets := make(map[int]float64, len(sockets))
	var sum float64
	for _, s := range sockets {
		f, err := drv.dom.ReadFloat(socketKey(keyTargetPrefix, s), -1)
		if err != nil || f < 0 {
			return // incomplete target set; wait for the next update
		}
		targets[s] = f
		sum += f
	}
	if sum <= 0 {
		return
	}
	// Greedy redistribution: walk the I/O processes in id order and fill
	// sockets to their target share of the total weight.
	total := drv.g.TotalProcessWeight()
	if total <= 0 {
		return
	}
	type bucket struct {
		socket int
		want   float64
		have   float64
		vcpus  []int
		next   int
	}
	buckets := make([]*bucket, 0, len(sockets))
	for _, s := range sockets {
		vcpus := drv.g.VCPUsOnSocket(s)
		if len(vcpus) == 0 {
			continue
		}
		buckets = append(buckets, &bucket{socket: s, want: targets[s] / sum * total, vcpus: vcpus})
	}
	if len(buckets) < 2 {
		return
	}
	// Plan the proportional assignment, then apply it conservatively:
	// at most one actual migration per update, preferring the process
	// already farthest from its planned socket. Migration costs (cache
	// warmth, CPU co-location) are real, so the distribution converges
	// over a few update periods instead of thrashing.
	var migrate *guest.Process
	var migrateTo int
	for _, p := range drv.g.Processes() {
		if p.IOWeight <= 0 {
			continue
		}
		var best *bucket
		for _, b := range buckets {
			if best == nil || b.want-b.have > best.want-best.have {
				best = b
			}
		}
		best.have += p.IOWeight
		target := best.vcpus[best.next%len(best.vcpus)]
		best.next++
		if p.Socket() != best.socket && migrate == nil {
			migrate = p
			migrateTo = target
		}
	}
	if migrate != nil {
		migrate.MoveTo(migrateTo)
		drv.rebalance++
		if drv.rec != nil {
			drv.rec.Record(trace.Record{
				Kind: trace.KindCoschedMove, Dom: int(drv.g.ID()),
				Socket: drv.g.VCPU(migrateTo).Socket, Weight: migrate.IOWeight,
			})
		}
		drv.PublishWeights()
	}
}

// String identifies the driver.
func (drv *Driver) String() string {
	return "iorchestra-driver(dom" + strconv.Itoa(int(drv.g.ID())) + ")"
}

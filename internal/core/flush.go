package core

import (
	"strconv"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// retryKey indexes bounded-retry state per (guest, disk).
type retryKey struct {
	dom  store.DomID
	disk string
}

// flushController is Algorithm 1, the policy for flushing dirty pages:
// when the device has low utilization, tell the guest with the most
// dirty pages to flush. Guest dirty mirrors live in the hypervisor
// Monitor; this controller only decides and actuates through the store.
type flushController struct {
	m   *Manager
	cfg *ManagerConfig
	mon *hypervisor.Monitor

	check cadence

	outstandingDom   store.DomID
	outstandingDisk  string
	outstandingSince sim.Time
	lastNotice       sim.Time

	notices  uint64
	timeouts uint64
	retries  map[retryKey]int
	// withdrawn counts the manager's own flush_now=0 withdrawal writes
	// whose watch notifications are still in flight: they must not be
	// mistaken for guest acks (the notification arrives a latency later,
	// possibly after the next order went out).
	withdrawn map[retryKey]int
}

func newFlushController(m *Manager) *flushController {
	fc := &flushController{
		m:         m,
		cfg:       &m.cfg,
		mon:       m.h.Monitor(),
		retries:   map[retryKey]int{},
		withdrawn: map[retryKey]int{},
	}
	// Algorithm 1's mid-burst guard, taken literally: a guest whose dirty
	// count grew within the last 200 ms is still writing — leave it alone.
	fc.mon.SetDirtySettleWindow(200 * sim.Millisecond)
	fc.check = cadence{k: m.k, period: m.cfg.FlushCheckInterval, tick: func() bool {
		fc.flushTick()
		return fc.mon.AnyDirty()
	}}
	return fc
}

func (fc *flushController) Name() string { return "flush" }

// Attach: flush control needs no per-guest hooks beyond the shared
// driver; candidates announce themselves through has_dirty_pages.
func (fc *flushController) Attach(rt *hypervisor.GuestRuntime) {}

// Detach forgets all flush state about dom.
func (fc *flushController) Detach(dom store.DomID) {
	fc.mon.ForgetGuest(dom)
	if fc.outstandingDom == dom {
		fc.outstandingDom = 0
	}
	for rk := range fc.retries {
		if rk.dom == dom {
			delete(fc.retries, rk)
		}
	}
	for rk := range fc.withdrawn {
		if rk.dom == dom {
			delete(fc.withdrawn, rk)
		}
	}
}

// Routes: the guest's dirty-page mirror plus our own flush_now key (the
// guest's reset to 0 is the completion ack).
func (fc *flushController) Routes() Routes {
	return Routes{DiskKeys: []string{keyHasDirty, keyNrDirty, keyFlushNow}}
}

func (fc *flushController) OnStoreEvent(ev StoreEvent) {
	switch ev.Key {
	case keyHasDirty:
		fc.mon.ObserveDirty(ev.Dom, ev.Disk, ev.Value == "1")
		if ev.Value == "1" {
			fc.check.arm()
		}
	case keyNrDirty:
		if nr, err := strconv.ParseInt(ev.Value, 10, 64); err == nil {
			fc.mon.ObserveNrDirty(ev.Dom, ev.Disk, nr)
		}
	case keyFlushNow:
		if ev.Value == "0" {
			fc.noteFlushAck(ev.Dom, ev.Disk)
		}
	}
}

func (fc *flushController) noteFlushAck(dom store.DomID, disk string) {
	rk := retryKey{dom: dom, disk: disk}
	if fc.withdrawn[rk] > 0 {
		// Our own withdrawal echoing back — not a guest ack.
		if fc.withdrawn[rk]--; fc.withdrawn[rk] == 0 {
			delete(fc.withdrawn, rk)
		}
		return
	}
	if dom == fc.outstandingDom && disk == fc.outstandingDisk {
		fc.outstandingDom = 0 // guest answered; allow the next flush
		delete(fc.retries, rk)
	}
}

// OnFallback: a demoted guest can owe us nothing — drop any outstanding
// order so the argmax is free to pick a live candidate.
func (fc *flushController) OnFallback(dom store.DomID) {
	if fc.outstandingDom == dom {
		fc.outstandingDom = 0
	}
}

// OnRestore wipes the guest's retry debt and resumes idle checks if
// anyone still holds dirty pages.
func (fc *flushController) OnRestore(dom store.DomID) {
	for rk := range fc.retries {
		if rk.dom == dom {
			delete(fc.retries, rk)
		}
	}
	if fc.mon.AnyDirty() {
		fc.check.arm()
	}
}

// flushTick is Algorithm 1's management branch: when the device has low
// utilization, tell the guest with the most dirty pages to flush.
func (fc *flushController) flushTick() {
	m := fc.m
	now := m.k.Now()
	if fc.outstandingDom != 0 {
		if now-fc.outstandingSince < fc.cfg.FlushTimeout {
			return
		}
		// Deadline expired: the guest never answered flush_now. Withdraw
		// the stale order, count a bounded retry against the pair, and
		// after FlushMaxRetries demote the guest so the argmax below can
		// never pick the same dead guest forever while live candidates
		// starve.
		dom, disk := fc.outstandingDom, fc.outstandingDisk
		fc.outstandingDom = 0
		fc.timeouts++
		rk := retryKey{dom: dom, disk: disk}
		fc.retries[rk]++
		if m.rec != nil {
			m.rec.Record(trace.Record{
				Kind: trace.KindFlushTimeout, Dom: int(dom), Disk: disk,
				Value: strconv.Itoa(fc.retries[rk]),
			})
		}
		fc.withdrawn[rk]++
		m.st.WriteBool(store.Dom0, absDiskKey(dom, disk, keyFlushNow), false)
		if fc.retries[rk] > fc.cfg.FlushMaxRetries {
			delete(fc.retries, rk)
			m.live.enterFallback(dom, "flush-deadline")
		}
	}
	// Algorithm 1's trigger, taken literally: act only when the device
	// moves less than one tenth of its capacity. A busy device means some
	// VM is in a latency-sensitive phase — flushing now would hurt it.
	dev := fc.mon.DeviceSnapshot(now)
	if dev.BandwidthBps >= fc.cfg.FlushUtilFrac*dev.CapacityBps {
		return
	}
	if fc.notices > 0 && now-fc.lastNotice < fc.cfg.FlushCooldown {
		return
	}
	// i = argmax_i nr_i over guests with dirty pages, skipping guests
	// whose dirty set is still growing — they are mid-write-burst, and a
	// sync() now would stall exactly the VM the policy is protecting.
	// The Monitor keeps the candidates indexed (settled max-heap fed by
	// the watch events above), so the decision is O(1); the stale sweep
	// first replicates the lazy demotions the old every-dirty-dom scan
	// performed through its per-dom cooperative() calls. Fallback guests
	// are Baseline guests — their own flusher threads own the dirty
	// pages, so BestDirty skips them (Algorithm 1's liveness gate).
	m.live.sweepStale(fc.mon.Observed)
	bestDom, bestDisk, bestNr, found := fc.mon.BestDirty(now, m.live.cooperative)
	if !found || bestNr*4096 < fc.cfg.MinFlushBytes {
		return
	}
	fc.notices++
	fc.lastNotice = now
	fc.outstandingDom, fc.outstandingDisk, fc.outstandingSince = bestDom, bestDisk, now
	if m.rec != nil {
		m.rec.Record(trace.Record{
			Kind: trace.KindFlushOrder, Dom: int(bestDom), Disk: bestDisk,
			NrDirty: bestNr, DeviceBps: dev.BandwidthBps,
			UtilFrac: dev.UtilFraction,
		})
	}
	m.st.WriteBool(store.Dom0, absDiskKey(bestDom, bestDisk, keyFlushNow), true)
}

package core

import (
	"strconv"
	"strings"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Policies selects which collaborative functions the manager runs; the
// paper's ablation experiments enable them one at a time (Sec. 5.3–5.5).
type Policies struct {
	Flush      bool // Algorithm 1: cross-domain dirty-page flush control
	Congestion bool // Algorithm 2: collaborative congestion control
	Cosched    bool // Sec. 3.3: inter-domain I/O co-scheduling
}

// All enables every policy — the full IOrchestra configuration.
func All() Policies { return Policies{Flush: true, Congestion: true, Cosched: true} }

// ManagerConfig tunes the hypervisor-side modules.
type ManagerConfig struct {
	// FlushUtilFrac: flush when device bandwidth is below this fraction
	// of capacity (paper: one tenth).
	FlushUtilFrac float64
	// FlushCheckInterval paces idle-bandwidth checks while dirty VMs exist.
	FlushCheckInterval sim.Duration
	// FlushTimeout abandons an unanswered flush_now.
	FlushTimeout sim.Duration
	// MinFlushBytes: do not bother a guest whose dirty set is smaller
	// (avoids churning sync() for crumbs).
	MinFlushBytes int64
	// FlushCooldown spaces successive flush notices.
	FlushCooldown sim.Duration
	// CongestionCheckInterval paces host-relief checks while VMs are held.
	CongestionCheckInterval sim.Duration
	// ReleaseStaggerMax is the FIFO wake-up stagger bound (paper: 0–99 ms).
	ReleaseStaggerMax sim.Duration
	// CoschedInterval is the weight-update cadence (paper: every second).
	CoschedInterval sim.Duration
	// CoschedChangeFrac forces an early update when the core-latency
	// ratio shifts by more than this fraction (paper: 50 %).
	CoschedChangeFrac float64
	// CoschedMinLatency gates process redistribution: below this on-core
	// latency there is no contention worth rebalancing, and migrations
	// would only disturb cache and CPU co-location.
	CoschedMinLatency sim.Duration

	// Graceful degradation (docs/FAULTS.md). The paper's host waits on
	// guest cooperation; these bounds make every wait finite so one bad
	// guest can never stall a loop or starve siblings.

	// HeartbeatTimeout demotes a guest whose iorchestra/heartbeat is
	// older than this to Baseline behavior (default 350 ms — three
	// missed 100 ms beats plus delivery slack). <= 0 disables the check.
	HeartbeatTimeout sim.Duration
	// FlushMaxRetries bounds re-issued flush orders per (guest, disk)
	// after a FlushTimeout expiry before the guest falls back.
	FlushMaxRetries int
	// ReleaseAckTimeout re-publishes an unacknowledged release_request
	// (the ack is the guest's reset to 0); <= 0 disables retries.
	ReleaseAckTimeout sim.Duration
	// ReleaseMaxRetries bounds release re-publishes before fallback.
	ReleaseMaxRetries int
	// HoldDeadline force-releases a guest held in congestion avoidance
	// this long even if the host still looks congested — the safety
	// valve against a stuck device starving held guests forever.
	HoldDeadline sim.Duration
	// FallbackPenalty is how long a fallen-back guest must heartbeat
	// again before it is restored (a driver re-registration restores it
	// immediately).
	FallbackPenalty sim.Duration
}

func (c *ManagerConfig) fillDefaults() {
	if c.FlushUtilFrac <= 0 {
		c.FlushUtilFrac = 0.1
	}
	if c.FlushCheckInterval <= 0 {
		c.FlushCheckInterval = 50 * sim.Millisecond
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = sim.Second
	}
	if c.MinFlushBytes <= 0 {
		c.MinFlushBytes = 8 << 20
	}
	if c.FlushCooldown <= 0 {
		c.FlushCooldown = 200 * sim.Millisecond
	}
	if c.CongestionCheckInterval <= 0 {
		c.CongestionCheckInterval = 5 * sim.Millisecond
	}
	if c.ReleaseStaggerMax <= 0 {
		c.ReleaseStaggerMax = 99 * sim.Millisecond
	}
	if c.CoschedInterval <= 0 {
		c.CoschedInterval = sim.Second
	}
	if c.CoschedChangeFrac <= 0 {
		c.CoschedChangeFrac = 0.5
	}
	if c.CoschedMinLatency <= 0 {
		c.CoschedMinLatency = 150 * sim.Microsecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 350 * sim.Millisecond
	}
	if c.FlushMaxRetries <= 0 {
		c.FlushMaxRetries = 2
	}
	if c.ReleaseAckTimeout <= 0 {
		c.ReleaseAckTimeout = 100 * sim.Millisecond
	}
	if c.ReleaseMaxRetries <= 0 {
		c.ReleaseMaxRetries = 3
	}
	if c.HoldDeadline <= 0 {
		c.HoldDeadline = 5 * sim.Second
	}
	if c.FallbackPenalty <= 0 {
		c.FallbackPenalty = 2 * sim.Second
	}
}

type congEntry struct {
	dom   store.DomID
	disk  string
	since sim.Time // when the guest was confirmed held (HoldDeadline clock)
}

// retryKey indexes bounded-retry state per (guest, disk).
type retryKey struct {
	dom  store.DomID
	disk string
}

// fallbackState marks a guest demoted to Baseline behavior.
type fallbackState struct {
	reason string
	since  sim.Time
}

// releaseState tracks an unacknowledged release_request.
type releaseState struct {
	disk    string
	retries int
	timer   *sim.Event
}

type dirtyState struct {
	nr       int64
	hasDirty bool
	lastGrow sim.Time
}

// Manager is the hypervisor side of IOrchestra: the monitoring module
// (device and I/O-core sampling) plus the management module (policy
// decisions published through the system store, Fig. 3).
type Manager struct {
	h   *hypervisor.Host
	k   *sim.Kernel
	st  *store.Store
	rng *stats.Stream
	pol Policies
	cfg ManagerConfig
	rec *trace.Recorder // host's decision-trace recorder (may be nil)

	drivers map[store.DomID]*Driver

	// Flush state (Algorithm 1).
	dirty            map[store.DomID]map[string]*dirtyState
	flushTimer       *sim.Event
	outstandingDom   store.DomID
	outstandingDisk  string
	outstandingSince sim.Time
	lastFlushNotice  sim.Time
	flushNotices     uint64

	// Congestion state (Algorithm 2).
	held      []congEntry
	congTimer *sim.Event
	vetoes    uint64 // queries answered "not congested"
	confirms  uint64 // queries answered "congested"
	relieves  uint64 // VMs released on host relief

	// Co-scheduling state (Sec. 3.3).
	coschedTimer *sim.Event
	lastRatio    float64
	lastApply    sim.Time
	coschedRuns  uint64
	coschedOff   map[store.DomID]bool

	// Graceful-degradation state (docs/FAULTS.md).
	lastBeat     map[store.DomID]sim.Time
	fallback     map[store.DomID]*fallbackState
	flushRetries map[retryKey]int
	pendingRel   map[store.DomID]*releaseState
	// withdrawn counts the manager's own flush_now=0 withdrawal writes
	// whose watch notifications are still in flight: they must not be
	// mistaken for guest acks (the notification arrives a latency later,
	// possibly after the next order went out).
	withdrawn map[retryKey]int

	flushTimeouts   uint64
	heartbeatMisses uint64
	releaseRetries  uint64
	releaseTimeouts uint64
	holdTimeouts    uint64
	fallbacks       uint64
	restores        uint64
}

// NewManager attaches IOrchestra's hypervisor modules to h with the given
// policies. Guests must be enabled individually with EnableGuest after
// their disks are attached.
func NewManager(h *hypervisor.Host, pol Policies, cfg ManagerConfig, rng *stats.Stream) *Manager {
	cfg.fillDefaults()
	m := &Manager{
		h:            h,
		k:            h.Kernel(),
		st:           h.Store(),
		rng:          rng,
		pol:          pol,
		cfg:          cfg,
		rec:          h.Recorder(),
		drivers:      map[store.DomID]*Driver{},
		dirty:        map[store.DomID]map[string]*dirtyState{},
		coschedOff:   map[store.DomID]bool{},
		lastBeat:     map[store.DomID]sim.Time{},
		fallback:     map[store.DomID]*fallbackState{},
		flushRetries: map[retryKey]int{},
		pendingRel:   map[store.DomID]*releaseState{},
		withdrawn:    map[retryKey]int{},
	}
	// The management module is called when there is a change on watched
	// items (Fig. 3): one privileged watch over all domains.
	m.st.Watch(store.Dom0, "/local/domain", m.onStoreEvent)
	return m
}

// EnableGuest installs the guest driver for rt and registers it with the
// manager. Returns the driver for inspection.
func (m *Manager) EnableGuest(rt *hypervisor.GuestRuntime) *Driver {
	drv := NewDriver(m.h, rt, m.rng.Fork("drv"+strconv.Itoa(int(rt.G.ID()))))
	m.drivers[rt.G.ID()] = drv
	// Registration counts as the first heartbeat: the real one arrives
	// through the store a notification latency later.
	m.lastBeat[rt.G.ID()] = m.k.Now()
	if m.pol.Cosched {
		m.armCosched()
	}
	return drv
}

// DisableGuest closes a guest's driver and forgets every piece of policy
// state about it — the teardown path for guest removal (the arrival
// experiments call it through Platform.Disable). Safe to call for guests
// that were never enabled.
func (m *Manager) DisableGuest(dom store.DomID) {
	drv := m.drivers[dom]
	if drv == nil {
		return
	}
	drv.Close()
	delete(m.drivers, dom)
	delete(m.dirty, dom)
	delete(m.lastBeat, dom)
	delete(m.fallback, dom)
	delete(m.coschedOff, dom)
	if rs := m.pendingRel[dom]; rs != nil {
		m.k.Cancel(rs.timer)
		delete(m.pendingRel, dom)
	}
	kept := m.held[:0]
	for _, e := range m.held {
		if e.dom != dom {
			kept = append(kept, e)
		}
	}
	m.held = kept
	if m.outstandingDom == dom {
		m.outstandingDom = 0
	}
	for rk := range m.flushRetries {
		if rk.dom == dom {
			delete(m.flushRetries, rk)
		}
	}
	for rk := range m.withdrawn {
		if rk.dom == dom {
			delete(m.withdrawn, rk)
		}
	}
}

// Driver returns the installed driver for a domain (nil if not enabled).
func (m *Manager) Driver(dom store.DomID) *Driver { return m.drivers[dom] }

// FlushNotices, Vetoes, Confirms, Relieves, CoschedRuns expose counters.
func (m *Manager) FlushNotices() uint64 { return m.flushNotices }

// Vetoes reports congestion queries answered "host not congested".
func (m *Manager) Vetoes() uint64 { return m.vetoes }

// Confirms reports congestion queries answered "host congested".
func (m *Manager) Confirms() uint64 { return m.confirms }

// Relieves reports VMs released when the host device left congestion.
func (m *Manager) Relieves() uint64 { return m.relieves }

// CoschedRuns reports co-scheduling weight updates applied.
func (m *Manager) CoschedRuns() uint64 { return m.coschedRuns }

// FlushTimeouts reports flush orders abandoned at the deadline.
func (m *Manager) FlushTimeouts() uint64 { return m.flushTimeouts }

// HeartbeatMisses reports stale-heartbeat detections.
func (m *Manager) HeartbeatMisses() uint64 { return m.heartbeatMisses }

// ReleaseRetries reports re-published release_request orders.
func (m *Manager) ReleaseRetries() uint64 { return m.releaseRetries }

// ReleaseTimeouts reports releases that exhausted their retries.
func (m *Manager) ReleaseTimeouts() uint64 { return m.releaseTimeouts }

// HoldTimeouts reports guests force-released at the hold deadline.
func (m *Manager) HoldTimeouts() uint64 { return m.holdTimeouts }

// Fallbacks reports guests demoted to Baseline behavior.
func (m *Manager) Fallbacks() uint64 { return m.fallbacks }

// Restores reports guests restored to collaborative mode.
func (m *Manager) Restores() uint64 { return m.restores }

// InFallback reports whether dom is currently demoted (read-only; use
// Cooperative to also run the lazy heartbeat check).
func (m *Manager) InFallback(dom store.DomID) bool { return m.fallback[dom] != nil }

// DisableCosched excludes one guest from co-scheduling decisions (weight
// targets and quanta); ablation experiments use it to hold a guest's
// process placement static on an otherwise identical platform.
func (m *Manager) DisableCosched(dom store.DomID) { m.coschedOff[dom] = true }

// --- Store event dispatch --------------------------------------------------

// onStoreEvent parses /local/domain/<id>/<rel> and routes to policies.
func (m *Manager) onStoreEvent(path, value string) {
	const prefix = "/local/domain/"
	if !strings.HasPrefix(path, prefix) {
		return
	}
	rest := path[len(prefix):]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return
	}
	id, err := strconv.Atoi(rest[:i])
	if err != nil {
		return
	}
	dom := store.DomID(id)
	rel := rest[i+1:]
	switch {
	case strings.HasPrefix(rel, "virt-dev/"):
		dr := rel[len("virt-dev/"):]
		j := strings.IndexByte(dr, '/')
		if j < 0 {
			return
		}
		disk, key := dr[:j], dr[j+1:]
		switch key {
		case keyHasDirty:
			if m.pol.Flush {
				m.noteDirty(dom, disk, value == "1")
			}
		case keyNrDirty:
			if m.pol.Flush {
				if nr, err := strconv.ParseInt(value, 10, 64); err == nil {
					m.noteNr(dom, disk, nr)
				}
			}
		case keyCongestQuery:
			if m.pol.Congestion && value == "1" {
				m.handleCongestQuery(dom, disk)
			}
		case keyFlushNow:
			if value == "0" {
				rk := retryKey{dom: dom, disk: disk}
				if m.withdrawn[rk] > 0 {
					// Our own withdrawal echoing back — not a guest ack.
					if m.withdrawn[rk]--; m.withdrawn[rk] == 0 {
						delete(m.withdrawn, rk)
					}
					return
				}
				if dom == m.outstandingDom && disk == m.outstandingDisk {
					m.outstandingDom = 0 // guest answered; allow the next flush
					delete(m.flushRetries, rk)
				}
			}
		}
	case rel == keyHeartbeat:
		m.noteHeartbeat(dom)
	case rel == keyDriverPresent:
		if value == "1" {
			m.noteDriverRegistered(dom)
		}
	case rel == keyReleaseRequest:
		// The manager writes "1"; the guest's reset to "0" is the ack.
		if value == "0" {
			m.noteReleaseAck(dom)
		}
	case strings.HasPrefix(rel, keyWeightPrefix+"/") || rel == keyTotalWeight:
		if m.pol.Cosched {
			m.armCosched()
		}
	}
}

// --- Graceful degradation ---------------------------------------------------
//
// The collaborative functions assume a live driver on the other side of
// the store. When one guest stops cooperating — no driver, crashed
// driver, stuck sync, lost notifications — the manager demotes exactly
// that guest to Baseline behavior: skipped by Algorithm 1's argmax, no
// verdicts in Algorithm 2 (the guest's kernel falls back to its local
// avoidance), excluded from Algorithm 3's redistribution. Siblings keep
// full collaboration. docs/FAULTS.md is the runbook.

// cooperative reports whether dom may participate in collaborative
// decisions, lazily demoting it on a stale heartbeat — the check runs at
// decision sites, so detection costs nothing while everyone is healthy.
func (m *Manager) cooperative(dom store.DomID) bool {
	if _, ok := m.drivers[dom]; !ok {
		return false
	}
	if m.fallback[dom] != nil {
		return false
	}
	if t := m.cfg.HeartbeatTimeout; t > 0 {
		if last, ok := m.lastBeat[dom]; ok && m.k.Now()-last > t {
			m.heartbeatMisses++
			if m.rec != nil {
				m.rec.Record(trace.Record{
					Kind: trace.KindHeartbeatMiss, Dom: int(dom),
					Latency: m.k.Now() - last,
				})
			}
			m.enterFallback(dom, "heartbeat")
			return false
		}
	}
	return true
}

// Cooperative is the exported probe: it runs the same lazy heartbeat
// check the decision loops use.
func (m *Manager) Cooperative(dom store.DomID) bool { return m.cooperative(dom) }

func (m *Manager) noteHeartbeat(dom store.DomID) {
	m.lastBeat[dom] = m.k.Now()
	// A fallen-back guest that has served its penalty and is beating
	// again earns its way back to collaborative mode.
	if fb := m.fallback[dom]; fb != nil && m.k.Now()-fb.since >= m.cfg.FallbackPenalty {
		m.exitFallback(dom, "heartbeat-resumed")
	}
}

func (m *Manager) noteDriverRegistered(dom store.DomID) {
	m.lastBeat[dom] = m.k.Now()
	if m.fallback[dom] != nil {
		m.exitFallback(dom, "driver-registered")
	}
}

// enterFallback demotes dom to Baseline behavior and unsticks anything
// the manager was holding or expecting from it.
func (m *Manager) enterFallback(dom store.DomID, reason string) {
	if m.fallback[dom] != nil {
		return
	}
	m.fallback[dom] = &fallbackState{reason: reason, since: m.k.Now()}
	m.fallbacks++
	if m.rec != nil {
		m.rec.Record(trace.Record{Kind: trace.KindFallbackEnter, Dom: int(dom), Value: reason})
	}
	m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyFallback, true)
	// Stop expecting acks from a guest we no longer trust.
	if rs := m.pendingRel[dom]; rs != nil {
		m.k.Cancel(rs.timer)
		delete(m.pendingRel, dom)
	}
	if m.outstandingDom == dom {
		m.outstandingDom = 0
	}
	// Anything still held must not stay parked behind a dead protocol:
	// publish one last best-effort release (a live-but-slow driver will
	// act on it; a dead one leaves its queues to the local controller).
	var wasHeld bool
	kept := m.held[:0]
	for _, e := range m.held {
		if e.dom == dom {
			wasHeld = true
		} else {
			kept = append(kept, e)
		}
	}
	m.held = kept
	if wasHeld {
		m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest, true)
	}
}

// exitFallback restores dom to collaborative mode with a clean slate.
func (m *Manager) exitFallback(dom store.DomID, reason string) {
	if m.fallback[dom] == nil {
		return
	}
	delete(m.fallback, dom)
	m.restores++
	if m.rec != nil {
		m.rec.Record(trace.Record{Kind: trace.KindFallbackExit, Dom: int(dom), Value: reason})
	}
	m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyFallback, false)
	for rk := range m.flushRetries {
		if rk.dom == dom {
			delete(m.flushRetries, rk)
		}
	}
	m.lastBeat[dom] = m.k.Now() // fresh grace window
	if m.anyDirty() {
		m.armFlush()
	}
}

// --- Algorithm 1: policy for flushing dirty pages --------------------------

func (m *Manager) noteDirty(dom store.DomID, disk string, has bool) {
	byDisk := m.dirty[dom]
	if byDisk == nil {
		byDisk = map[string]*dirtyState{}
		m.dirty[dom] = byDisk
	}
	ds := byDisk[disk]
	if ds == nil {
		ds = &dirtyState{}
		byDisk[disk] = ds
	}
	ds.hasDirty = has
	if !has {
		ds.nr = 0
	}
	if has {
		m.armFlush()
	}
}

func (m *Manager) noteNr(dom store.DomID, disk string, nr int64) {
	byDisk := m.dirty[dom]
	if byDisk == nil {
		return
	}
	if ds := byDisk[disk]; ds != nil {
		if nr > ds.nr {
			ds.lastGrow = m.k.Now()
		}
		ds.nr = nr
	}
}

func (m *Manager) anyDirty() bool {
	for _, byDisk := range m.dirty {
		for _, ds := range byDisk {
			if ds.hasDirty {
				return true
			}
		}
	}
	return false
}

// armFlush schedules idle-bandwidth checks while dirty VMs exist — the
// lazy-timer pattern keeps the event calendar empty when there is nothing
// to do, matching the paper's "only reacts to certain system events".
func (m *Manager) armFlush() {
	if !m.pol.Flush || m.flushTimer != nil {
		return
	}
	m.flushTimer = m.k.After(m.cfg.FlushCheckInterval, func() {
		m.flushTimer = nil
		m.flushTick()
		if m.anyDirty() {
			m.armFlush()
		}
	})
}

// flushTick is Algorithm 1's management branch: when the device has low
// utilization, tell the guest with the most dirty pages to flush.
func (m *Manager) flushTick() {
	now := m.k.Now()
	if m.outstandingDom != 0 {
		if now-m.outstandingSince < m.cfg.FlushTimeout {
			return
		}
		// Deadline expired: the guest never answered flush_now. Withdraw
		// the stale order, count a bounded retry against the pair, and
		// after FlushMaxRetries demote the guest so the argmax below can
		// never pick the same dead guest forever while live candidates
		// starve.
		dom, disk := m.outstandingDom, m.outstandingDisk
		m.outstandingDom = 0
		m.flushTimeouts++
		rk := retryKey{dom: dom, disk: disk}
		m.flushRetries[rk]++
		if m.rec != nil {
			m.rec.Record(trace.Record{
				Kind: trace.KindFlushTimeout, Dom: int(dom), Disk: disk,
				Value: strconv.Itoa(m.flushRetries[rk]),
			})
		}
		m.withdrawn[rk]++
		m.st.WriteBool(store.Dom0, absDiskKey(dom, disk, keyFlushNow), false)
		if m.flushRetries[rk] > m.cfg.FlushMaxRetries {
			delete(m.flushRetries, rk)
			m.enterFallback(dom, "flush-deadline")
		}
	}
	// Algorithm 1's trigger, taken literally: act only when the device
	// moves less than one tenth of its capacity. A busy device means some
	// VM is in a latency-sensitive phase — flushing now would hurt it.
	dev := m.h.Device()
	if dev.BandwidthBps(now) >= m.cfg.FlushUtilFrac*dev.CapacityBps() {
		return
	}
	if m.flushNotices > 0 && now-m.lastFlushNotice < m.cfg.FlushCooldown {
		return
	}
	// i = argmax_i nr_i over guests with dirty pages, skipping guests
	// whose dirty set is still growing — they are mid-write-burst, and a
	// sync() now would stall exactly the VM the policy is protecting.
	var bestDom store.DomID
	var bestDisk string
	var bestNr int64 = -1
	for dom, byDisk := range m.dirty {
		if !m.cooperative(dom) {
			// Fallback guests are Baseline guests: their own flusher
			// threads own the dirty pages (Algorithm 1 skips them).
			continue
		}
		for disk, ds := range byDisk {
			if ds.hasDirty && ds.nr > bestNr && now-ds.lastGrow > 200*sim.Millisecond {
				bestDom, bestDisk, bestNr = dom, disk, ds.nr
			}
		}
	}
	if bestNr < 0 || bestNr*4096 < m.cfg.MinFlushBytes {
		return
	}
	m.flushNotices++
	m.lastFlushNotice = now
	m.outstandingDom, m.outstandingDisk, m.outstandingSince = bestDom, bestDisk, now
	if m.rec != nil {
		m.rec.Record(trace.Record{
			Kind: trace.KindFlushOrder, Dom: int(bestDom), Disk: bestDisk,
			NrDirty: bestNr, DeviceBps: dev.BandwidthBps(now),
			UtilFrac: dev.UtilFraction(now),
		})
	}
	m.st.WriteBool(store.Dom0, absDiskKey(bestDom, bestDisk, keyFlushNow), true)
}

// --- Algorithm 2: policy for congestion control ----------------------------

// handleCongestQuery answers a guest's congestion query: confirm when the
// host device is genuinely overcrowded, otherwise release the guest.
func (m *Manager) handleCongestQuery(dom store.DomID, disk string) {
	if !m.cooperative(dom) {
		// No verdict for a fallback guest: its kernel's local avoidance
		// (engage at 7/8, release below 13/16) is exactly Baseline.
		return
	}
	// Reset the query flag so subsequent queries re-fire the watch.
	m.st.WriteBool(store.Dom0, absDiskKey(dom, disk, keyCongestQuery), false)
	if m.h.IOCongested() {
		m.confirms++
		m.recordCongestion(trace.KindCongestConfirm, dom, disk)
		m.st.WriteBool(store.Dom0, absDiskKey(dom, disk, keyCongested), true)
		for _, e := range m.held {
			if e.dom == dom && e.disk == disk {
				return
			}
		}
		m.held = append(m.held, congEntry{dom: dom, disk: disk, since: m.k.Now()})
		m.armCongestion()
		return
	}
	m.vetoes++
	m.requestRelease(dom, disk, trace.KindCongestVeto)
}

// requestRelease records the verdict, publishes release_request=1 and
// arms the bounded ack-retry machinery: a lost notification must not
// leave the guest's producers parked forever.
func (m *Manager) requestRelease(dom store.DomID, disk string, kind trace.Kind) {
	m.recordCongestion(kind, dom, disk)
	m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest, true)
	m.armReleaseRetry(dom, disk)
}

func (m *Manager) armReleaseRetry(dom store.DomID, disk string) {
	if m.cfg.ReleaseAckTimeout <= 0 || m.pendingRel[dom] != nil {
		return
	}
	rs := &releaseState{disk: disk}
	m.pendingRel[dom] = rs
	rs.timer = m.k.After(m.cfg.ReleaseAckTimeout, func() { m.releaseRetryTick(dom, rs) })
}

func (m *Manager) releaseRetryTick(dom store.DomID, rs *releaseState) {
	if m.pendingRel[dom] != rs {
		return
	}
	// The guest resets release_request to 0 when it acts; a still-set key
	// means the order (or its notification) was lost.
	if v, _ := m.st.ReadBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest); !v {
		delete(m.pendingRel, dom)
		return
	}
	if rs.retries >= m.cfg.ReleaseMaxRetries {
		delete(m.pendingRel, dom)
		m.releaseTimeouts++
		if m.rec != nil {
			m.rec.Record(trace.Record{
				Kind: trace.KindReleaseTimeout, Dom: int(dom), Disk: rs.disk,
				Value: strconv.Itoa(rs.retries),
			})
		}
		m.enterFallback(dom, "release-deadline")
		return
	}
	rs.retries++
	m.releaseRetries++
	if m.rec != nil {
		m.rec.Record(trace.Record{
			Kind: trace.KindReleaseRetry, Dom: int(dom), Disk: rs.disk,
			Value: strconv.Itoa(rs.retries),
		})
	}
	// Re-publish: the write re-fires the guest's watch even though the
	// value does not change.
	m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest, true)
	rs.timer = m.k.After(m.cfg.ReleaseAckTimeout, func() { m.releaseRetryTick(dom, rs) })
}

func (m *Manager) noteReleaseAck(dom store.DomID) {
	if rs := m.pendingRel[dom]; rs != nil {
		m.k.Cancel(rs.timer)
		delete(m.pendingRel, dom)
	}
}

// recordCongestion traces an Algorithm 2 verdict with the host queue
// depths that justified it.
func (m *Manager) recordCongestion(kind trace.Kind, dom store.DomID, disk string) {
	if m.rec == nil {
		return
	}
	m.rec.Record(trace.Record{
		Kind: kind, Dom: int(dom), Disk: disk,
		QueueDepth: m.h.Cgroup().Backlog(),
		DevPending: m.h.Device().Pending(),
	})
}

func (m *Manager) armCongestion() {
	if m.congTimer != nil {
		return
	}
	m.congTimer = m.k.After(m.cfg.CongestionCheckInterval, func() {
		m.congTimer = nil
		m.congestionTick()
		if len(m.held) > 0 {
			m.armCongestion()
		}
	})
}

// congestionTick is Algorithm 2's relief branch: once the host device is
// no longer congested, release held VMs in FIFO order, interleaved with a
// random 0–99 ms stagger.
func (m *Manager) congestionTick() {
	if len(m.held) == 0 {
		return
	}
	now := m.k.Now()
	if m.h.IOCongested() {
		// Still congested — but nobody may be held past HoldDeadline: a
		// device stuck in a degraded state (or a torn congested key)
		// must not park a guest's producers forever.
		if m.cfg.HoldDeadline <= 0 {
			return
		}
		kept := m.held[:0]
		for _, e := range m.held {
			if now-e.since >= m.cfg.HoldDeadline {
				m.holdTimeouts++
				m.requestRelease(e.dom, e.disk, trace.KindHoldTimeout)
			} else {
				kept = append(kept, e)
			}
		}
		m.held = kept
		return
	}
	var offset sim.Duration
	for _, e := range m.held {
		dom, disk := e.dom, e.disk
		m.relieves++
		m.k.After(offset, func() {
			m.requestRelease(dom, disk, trace.KindCongestRelease)
		})
		offset += sim.Duration(m.rng.Int63n(int64(m.cfg.ReleaseStaggerMax)))
	}
	m.held = m.held[:0]
}

// --- Sec. 3.3: inter-domain I/O co-scheduling -------------------------------

func (m *Manager) armCosched() {
	if !m.pol.Cosched || m.coschedTimer != nil {
		return
	}
	// Sample faster than the apply cadence so the >50 %-change trigger
	// can fire early, as the paper specifies.
	period := m.cfg.CoschedInterval / 5
	if period <= 0 {
		period = 200 * sim.Millisecond
	}
	m.coschedTimer = m.k.After(period, func() {
		m.coschedTimer = nil
		active := m.coschedTick()
		if active {
			m.armCosched()
		}
	})
}

// coschedTick samples per-core latencies, publishes redistribution targets
// for cross-socket VMs, computes per-VM per-socket I/O shares, and applies
// DRR quanta and cgroup weights. It reports whether co-scheduling should
// keep sampling (any I/O-core traffic or cross-socket guests present).
func (m *Manager) coschedTick() bool {
	cores := m.h.IOCores()
	now := m.k.Now()
	if len(cores) == 0 || len(m.drivers) == 0 {
		return false
	}
	// Monitoring module: collect L_i per core.
	lat := make([]float64, len(cores))
	var anyTraffic bool
	for i, c := range cores {
		lat[i] = c.MeanLatency(now)
		if c.Processed() > 0 {
			anyTraffic = true
		}
	}
	// Change detection on the max/min latency ratio.
	ratio := maxOf(lat) / minOf(lat)
	due := now-m.lastApply >= m.cfg.CoschedInterval
	changed := m.lastRatio > 0 && relDelta(ratio, m.lastRatio) > m.cfg.CoschedChangeFrac
	if !due && !changed {
		return anyTraffic || m.crossSocketGuestExists()
	}
	m.lastApply = now
	m.lastRatio = ratio
	m.coschedRuns++
	if m.rec != nil {
		m.rec.Record(trace.Record{
			Kind:        trace.KindCoschedUpdate,
			CoreLatency: append([]float64(nil), lat...),
			Weight:      ratio,
		})
	}

	// Weight targets: fraction on socket i ∝ 1/L_i (the paper's inverse-
	// proportional distribution). Published only when some core is
	// genuinely contended; otherwise placement is left alone.
	var invSum float64
	for _, l := range lat {
		invSum += 1 / l
	}
	contended := maxOf(lat) >= m.cfg.CoschedMinLatency.Seconds()
	for dom, drv := range m.drivers {
		if !contended || len(drv.g.Sockets()) < 2 || m.coschedOff[dom] || !m.cooperative(dom) {
			continue
		}
		for _, s := range drv.g.Sockets() {
			if s >= 0 && s < len(lat) {
				f := (1 / lat[s]) / invSum
				// Keep every socket carrying some share so the
				// distribution converges instead of oscillating between
				// extremes.
				if f < 0.1 {
					f = 0.1
				}
				if f > 0.9 {
					f = 0.9
				}
				m.st.WriteFloat(store.Dom0, store.DomainPath(dom)+"/"+socketKey(keyTargetPrefix, s), f)
			}
		}
	}

	// Shares: S_SKT = W_SKT / ΣP · S^(VM); equal S^(VM) across enabled
	// guests unless overridden in the store.
	nGuests := len(m.drivers)
	bwMax := m.h.Device().CapacityBps()
	type coreShare struct{ sum float64 }
	shares := make([]coreShare, len(cores))
	for dom, drv := range m.drivers {
		if m.coschedOff[dom] || m.fallback[dom] != nil {
			// Fallback guests keep their last-applied static weights
			// (Algorithm 3 degradation) — their stale store state must
			// not keep steering quanta.
			continue
		}
		base := store.DomainPath(dom)
		vmShare, _ := m.st.ReadFloat(store.Dom0, base+"/"+keyVMShare, 1.0/float64(nGuests))
		totalW, _ := m.st.ReadFloat(store.Dom0, base+"/"+keyTotalWeight, 0)
		if totalW <= 0 {
			continue
		}
		for _, s := range drv.g.Sockets() {
			w, _ := m.st.ReadFloat(store.Dom0, base+"/"+socketKey(keyWeightPrefix, s), 0)
			sSkt := w / totalW * vmShare
			m.st.WriteFloat(store.Dom0, base+"/"+socketKey(keySharePrefix, s), sSkt)
			if s >= 0 && s < len(cores) {
				// Q_i = BWmax · S_SKT, scaled to a 1 ms round.
				cores[s].SetQuantum(dom, bwMax*sSkt/1000)
				shares[s].sum += sSkt
			}
		}
	}
	// The sum of shares on a socket is its I/O core's weight at the
	// device (Sec. 3.3: "cgroups with these I/O cores' weights").
	for i, c := range cores {
		w := shares[i].sum
		if w <= 0 {
			w = 0.01
		}
		m.h.Cgroup().SetWeight(c.ID(), w)
	}
	return anyTraffic || m.crossSocketGuestExists()
}

func (m *Manager) crossSocketGuestExists() bool {
	for _, drv := range m.drivers {
		if len(drv.g.Sockets()) > 1 {
			return true
		}
	}
	return false
}

func maxOf(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x > v {
			v = x
		}
	}
	return v
}

func minOf(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x < v {
			v = x
		}
	}
	return v
}

func relDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return 0
	}
	return d / b
}

package core

import (
	"strconv"
	"strings"

	"iorchestra/internal/fault"
	"iorchestra/internal/gstate"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Manager is the hypervisor side of IOrchestra: the paper's management
// module (Fig. 3) as an orchestrator over pluggable policy controllers.
// It owns the privileged store watch and fans parsed events out to the
// controllers' declared routes, hosts the shared liveness middleware,
// and runs the per-guest lifecycle (driver installation, teardown). The
// policies themselves live in flush.go, congestion.go and cosched.go;
// the Manager holds no policy state of its own.
//
// Manager is itself a Controller, so platforms install it through the
// same registry as the baseline systems.
type Manager struct {
	h   *hypervisor.Host
	k   *sim.Kernel
	st  *store.Store
	rng *stats.Stream
	pol Policies
	cfg ManagerConfig
	rec *trace.Recorder // host's decision-trace recorder (may be nil)

	drivers map[store.DomID]*Driver
	live    *liveness
	faults  *fault.Injector // optional; see SetFaults

	// subs are the policy controllers in registration order; flush,
	// congest and cosched alias the entries for counter snapshots and
	// targeted delegation (each may be nil under a partial Policies).
	subs    []Controller
	flush   *flushController
	congest *congestController
	cosched *coschedController
	gstate  *gstateController

	// Store-event routing tables, built from each handler's Routes().
	diskRoutes   map[string][]StoreHandler
	domainRoutes map[string][]StoreHandler
	prefixRoutes []prefixRoute
}

type prefixRoute struct {
	prefix  string
	handler StoreHandler
}

// NewManager attaches IOrchestra's hypervisor modules to h with the given
// policies. Guests must be enabled individually with EnableGuest (or
// Attach) after their disks are attached.
func NewManager(h *hypervisor.Host, pol Policies, cfg ManagerConfig, rng *stats.Stream) *Manager {
	cfg.fillDefaults()
	m := &Manager{
		h:            h,
		k:            h.Kernel(),
		st:           h.Store(),
		rng:          rng,
		pol:          pol,
		cfg:          cfg,
		rec:          h.Recorder(),
		drivers:      map[store.DomID]*Driver{},
		diskRoutes:   map[string][]StoreHandler{},
		domainRoutes: map[string][]StoreHandler{},
	}
	m.live = newLiveness(m.k, m.st, m.rec, &m.cfg,
		func(dom store.DomID) bool { _, ok := m.drivers[dom]; return ok })
	m.addRoutes(m.live)
	if pol.Flush {
		m.flush = newFlushController(m)
		m.register(m.flush)
	}
	if pol.Congestion {
		m.congest = newCongestController(m)
		m.register(m.congest)
	}
	if pol.Cosched {
		m.cosched = newCoschedController(m)
		m.register(m.cosched)
	}
	if pol.GState {
		m.gstate = newGStateController(m)
		m.register(m.gstate)
	}
	// The management module is called when there is a change on watched
	// items (Fig. 3): one privileged watch over all domains, fanned out
	// to the registered routes.
	m.st.Watch(store.Dom0, store.Root, m.onStoreEvent)
	return m
}

// register wires a policy controller into the manager's framework:
// lifecycle dispatch, store-event routing, and liveness callbacks.
func (m *Manager) register(c Controller) {
	m.subs = append(m.subs, c)
	if sh, ok := c.(StoreHandler); ok {
		m.addRoutes(sh)
	}
	if fh, ok := c.(FallbackHook); ok {
		m.live.hooks = append(m.live.hooks, fh)
	}
}

func (m *Manager) addRoutes(sh StoreHandler) {
	r := sh.Routes()
	for _, k := range r.DiskKeys {
		m.diskRoutes[k] = append(m.diskRoutes[k], sh)
	}
	for _, k := range r.DomainKeys {
		m.domainRoutes[k] = append(m.domainRoutes[k], sh)
	}
	for _, p := range r.DomainPrefixes {
		m.prefixRoutes = append(m.prefixRoutes, prefixRoute{prefix: p, handler: sh})
	}
}

// SetFaults installs the platform's fault injector: Attach consults it
// to decide whether a guest's driver registers at all (an uncooperative
// legacy image) and to arm per-driver crash/sync faults.
func (m *Manager) SetFaults(inj *fault.Injector) { m.faults = inj }

// Name identifies the manager in the platform's controller registry.
func (m *Manager) Name() string { return "iorchestra" }

// Attach is the Controller lifecycle entry: it enables the guest unless
// the fault layer marks it uncooperative — such a guest never registers
// a driver, the exact shape a legacy image presents; its I/O still flows
// through the shared backend.
func (m *Manager) Attach(rt *hypervisor.GuestRuntime) {
	if m.faults != nil && m.faults.Uncooperative(rt.G.ID()) {
		return
	}
	drv := m.EnableGuest(rt)
	if m.faults != nil {
		drv.SetSyncFault(m.faults.SyncFault(rt.G.ID()))
		m.faults.ScheduleCrash(rt.G.ID(), drv)
	}
}

// Detach is the Controller lifecycle exit (see DisableGuest).
func (m *Manager) Detach(dom store.DomID) { m.DisableGuest(dom) }

// EnableGuest installs the guest driver for rt and registers it with the
// manager. Returns the driver for inspection.
func (m *Manager) EnableGuest(rt *hypervisor.GuestRuntime) *Driver {
	drv := NewDriver(m.h, rt, m.rng.Fork("drv"+strconv.Itoa(int(rt.G.ID()))))
	m.drivers[rt.G.ID()] = drv
	// Registration counts as the first heartbeat: the real one arrives
	// through the store a notification latency later.
	m.live.noteAttached(rt.G.ID())
	for _, c := range m.subs {
		c.Attach(rt)
	}
	return drv
}

// DisableGuest closes a guest's driver and lets every controller forget
// its policy state — the teardown path for guest removal (the arrival
// experiments call it through Platform.Disable). Safe to call for guests
// that were never enabled.
func (m *Manager) DisableGuest(dom store.DomID) {
	drv := m.drivers[dom]
	if drv == nil {
		return
	}
	drv.Close()
	delete(m.drivers, dom)
	for _, c := range m.subs {
		c.Detach(dom)
	}
	m.live.forget(dom)
}

// Driver returns the installed driver for a domain (nil if not enabled).
func (m *Manager) Driver(dom store.DomID) *Driver { return m.drivers[dom] }

// GStateMeter exposes the G-state controller's SLA-violation meter for
// the tiered experiments' per-tier reporting — nil when the gstate
// policy is off.
func (m *Manager) GStateMeter() *gstate.Meter {
	if m.gstate == nil {
		return nil
	}
	return m.gstate.Meter()
}

// InFallback reports whether dom is currently demoted (read-only; use
// Cooperative to also run the lazy heartbeat check).
func (m *Manager) InFallback(dom store.DomID) bool { return m.live.inFallback(dom) }

// Cooperative is the exported liveness probe: it runs the same lazy
// heartbeat check the decision loops use.
func (m *Manager) Cooperative(dom store.DomID) bool { return m.live.cooperative(dom) }

// DisableCosched excludes one guest from co-scheduling decisions (weight
// targets and quanta); ablation experiments use it to hold a guest's
// process placement static on an otherwise identical platform. A no-op
// when the manager runs without the co-scheduling policy.
func (m *Manager) DisableCosched(dom store.DomID) {
	if m.cosched != nil {
		m.cosched.disable(dom)
	}
}

// crossSocketGuestExists reports whether any enabled guest spans sockets
// (the population co-scheduling can act on).
func (m *Manager) crossSocketGuestExists() bool {
	for _, drv := range m.drivers {
		if len(drv.g.Sockets()) > 1 {
			return true
		}
	}
	return false
}

// onStoreEvent parses /local/domain/<id>/<rel> and routes to the
// controllers whose declared keys match.
func (m *Manager) onStoreEvent(path, value string) {
	const prefix = store.Root + "/"
	if !strings.HasPrefix(path, prefix) {
		return
	}
	rest := path[len(prefix):]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return
	}
	id, err := strconv.Atoi(rest[:i])
	if err != nil {
		return
	}
	dom := store.DomID(id)
	rel := rest[i+1:]
	if strings.HasPrefix(rel, "virt-dev/") {
		dr := rel[len("virt-dev/"):]
		j := strings.IndexByte(dr, '/')
		if j < 0 {
			return
		}
		disk, key := dr[:j], dr[j+1:]
		for _, h := range m.diskRoutes[key] {
			h.OnStoreEvent(StoreEvent{Dom: dom, Disk: disk, Key: key, Value: value})
		}
		return
	}
	if hs := m.domainRoutes[rel]; hs != nil {
		for _, h := range hs {
			h.OnStoreEvent(StoreEvent{Dom: dom, Key: rel, Value: value})
		}
		return
	}
	for _, pr := range m.prefixRoutes {
		if strings.HasPrefix(rel, pr.prefix) {
			pr.handler.OnStoreEvent(StoreEvent{Dom: dom, Key: rel, Value: value})
		}
	}
}

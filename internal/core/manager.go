package core

import (
	"strconv"
	"strings"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/store"
	"iorchestra/internal/trace"
)

// Policies selects which collaborative functions the manager runs; the
// paper's ablation experiments enable them one at a time (Sec. 5.3–5.5).
type Policies struct {
	Flush      bool // Algorithm 1: cross-domain dirty-page flush control
	Congestion bool // Algorithm 2: collaborative congestion control
	Cosched    bool // Sec. 3.3: inter-domain I/O co-scheduling
}

// All enables every policy — the full IOrchestra configuration.
func All() Policies { return Policies{Flush: true, Congestion: true, Cosched: true} }

// ManagerConfig tunes the hypervisor-side modules.
type ManagerConfig struct {
	// FlushUtilFrac: flush when device bandwidth is below this fraction
	// of capacity (paper: one tenth).
	FlushUtilFrac float64
	// FlushCheckInterval paces idle-bandwidth checks while dirty VMs exist.
	FlushCheckInterval sim.Duration
	// FlushTimeout abandons an unanswered flush_now.
	FlushTimeout sim.Duration
	// MinFlushBytes: do not bother a guest whose dirty set is smaller
	// (avoids churning sync() for crumbs).
	MinFlushBytes int64
	// FlushCooldown spaces successive flush notices.
	FlushCooldown sim.Duration
	// CongestionCheckInterval paces host-relief checks while VMs are held.
	CongestionCheckInterval sim.Duration
	// ReleaseStaggerMax is the FIFO wake-up stagger bound (paper: 0–99 ms).
	ReleaseStaggerMax sim.Duration
	// CoschedInterval is the weight-update cadence (paper: every second).
	CoschedInterval sim.Duration
	// CoschedChangeFrac forces an early update when the core-latency
	// ratio shifts by more than this fraction (paper: 50 %).
	CoschedChangeFrac float64
	// CoschedMinLatency gates process redistribution: below this on-core
	// latency there is no contention worth rebalancing, and migrations
	// would only disturb cache and CPU co-location.
	CoschedMinLatency sim.Duration
}

func (c *ManagerConfig) fillDefaults() {
	if c.FlushUtilFrac <= 0 {
		c.FlushUtilFrac = 0.1
	}
	if c.FlushCheckInterval <= 0 {
		c.FlushCheckInterval = 50 * sim.Millisecond
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = sim.Second
	}
	if c.MinFlushBytes <= 0 {
		c.MinFlushBytes = 8 << 20
	}
	if c.FlushCooldown <= 0 {
		c.FlushCooldown = 200 * sim.Millisecond
	}
	if c.CongestionCheckInterval <= 0 {
		c.CongestionCheckInterval = 5 * sim.Millisecond
	}
	if c.ReleaseStaggerMax <= 0 {
		c.ReleaseStaggerMax = 99 * sim.Millisecond
	}
	if c.CoschedInterval <= 0 {
		c.CoschedInterval = sim.Second
	}
	if c.CoschedChangeFrac <= 0 {
		c.CoschedChangeFrac = 0.5
	}
	if c.CoschedMinLatency <= 0 {
		c.CoschedMinLatency = 150 * sim.Microsecond
	}
}

type congEntry struct {
	dom  store.DomID
	disk string
}

type dirtyState struct {
	nr       int64
	hasDirty bool
	lastGrow sim.Time
}

// Manager is the hypervisor side of IOrchestra: the monitoring module
// (device and I/O-core sampling) plus the management module (policy
// decisions published through the system store, Fig. 3).
type Manager struct {
	h   *hypervisor.Host
	k   *sim.Kernel
	st  *store.Store
	rng *stats.Stream
	pol Policies
	cfg ManagerConfig
	rec *trace.Recorder // host's decision-trace recorder (may be nil)

	drivers map[store.DomID]*Driver

	// Flush state (Algorithm 1).
	dirty            map[store.DomID]map[string]*dirtyState
	flushTimer       *sim.Event
	outstandingDom   store.DomID
	outstandingDisk  string
	outstandingSince sim.Time
	lastFlushNotice  sim.Time
	flushNotices     uint64

	// Congestion state (Algorithm 2).
	held      []congEntry
	congTimer *sim.Event
	vetoes    uint64 // queries answered "not congested"
	confirms  uint64 // queries answered "congested"
	relieves  uint64 // VMs released on host relief

	// Co-scheduling state (Sec. 3.3).
	coschedTimer *sim.Event
	lastRatio    float64
	lastApply    sim.Time
	coschedRuns  uint64
	coschedOff   map[store.DomID]bool
}

// NewManager attaches IOrchestra's hypervisor modules to h with the given
// policies. Guests must be enabled individually with EnableGuest after
// their disks are attached.
func NewManager(h *hypervisor.Host, pol Policies, cfg ManagerConfig, rng *stats.Stream) *Manager {
	cfg.fillDefaults()
	m := &Manager{
		h:          h,
		k:          h.Kernel(),
		st:         h.Store(),
		rng:        rng,
		pol:        pol,
		cfg:        cfg,
		rec:        h.Recorder(),
		drivers:    map[store.DomID]*Driver{},
		dirty:      map[store.DomID]map[string]*dirtyState{},
		coschedOff: map[store.DomID]bool{},
	}
	// The management module is called when there is a change on watched
	// items (Fig. 3): one privileged watch over all domains.
	m.st.Watch(store.Dom0, "/local/domain", m.onStoreEvent)
	return m
}

// EnableGuest installs the guest driver for rt and registers it with the
// manager. Returns the driver for inspection.
func (m *Manager) EnableGuest(rt *hypervisor.GuestRuntime) *Driver {
	drv := NewDriver(m.h, rt, m.rng.Fork("drv"+strconv.Itoa(int(rt.G.ID()))))
	m.drivers[rt.G.ID()] = drv
	if m.pol.Cosched {
		m.armCosched()
	}
	return drv
}

// Driver returns the installed driver for a domain (nil if not enabled).
func (m *Manager) Driver(dom store.DomID) *Driver { return m.drivers[dom] }

// FlushNotices, Vetoes, Confirms, Relieves, CoschedRuns expose counters.
func (m *Manager) FlushNotices() uint64 { return m.flushNotices }

// Vetoes reports congestion queries answered "host not congested".
func (m *Manager) Vetoes() uint64 { return m.vetoes }

// Confirms reports congestion queries answered "host congested".
func (m *Manager) Confirms() uint64 { return m.confirms }

// Relieves reports VMs released when the host device left congestion.
func (m *Manager) Relieves() uint64 { return m.relieves }

// CoschedRuns reports co-scheduling weight updates applied.
func (m *Manager) CoschedRuns() uint64 { return m.coschedRuns }

// DisableCosched excludes one guest from co-scheduling decisions (weight
// targets and quanta); ablation experiments use it to hold a guest's
// process placement static on an otherwise identical platform.
func (m *Manager) DisableCosched(dom store.DomID) { m.coschedOff[dom] = true }

// --- Store event dispatch --------------------------------------------------

// onStoreEvent parses /local/domain/<id>/<rel> and routes to policies.
func (m *Manager) onStoreEvent(path, value string) {
	const prefix = "/local/domain/"
	if !strings.HasPrefix(path, prefix) {
		return
	}
	rest := path[len(prefix):]
	i := strings.IndexByte(rest, '/')
	if i < 0 {
		return
	}
	id, err := strconv.Atoi(rest[:i])
	if err != nil {
		return
	}
	dom := store.DomID(id)
	rel := rest[i+1:]
	switch {
	case strings.HasPrefix(rel, "virt-dev/"):
		dr := rel[len("virt-dev/"):]
		j := strings.IndexByte(dr, '/')
		if j < 0 {
			return
		}
		disk, key := dr[:j], dr[j+1:]
		switch key {
		case keyHasDirty:
			if m.pol.Flush {
				m.noteDirty(dom, disk, value == "1")
			}
		case keyNrDirty:
			if m.pol.Flush {
				if nr, err := strconv.ParseInt(value, 10, 64); err == nil {
					m.noteNr(dom, disk, nr)
				}
			}
		case keyCongestQuery:
			if m.pol.Congestion && value == "1" {
				m.handleCongestQuery(dom, disk)
			}
		case keyFlushNow:
			if value == "0" && dom == m.outstandingDom && disk == m.outstandingDisk {
				m.outstandingDom = 0 // guest answered; allow the next flush
			}
		}
	case strings.HasPrefix(rel, keyWeightPrefix+"/") || rel == keyTotalWeight:
		if m.pol.Cosched {
			m.armCosched()
		}
	}
}

// --- Algorithm 1: policy for flushing dirty pages --------------------------

func (m *Manager) noteDirty(dom store.DomID, disk string, has bool) {
	byDisk := m.dirty[dom]
	if byDisk == nil {
		byDisk = map[string]*dirtyState{}
		m.dirty[dom] = byDisk
	}
	ds := byDisk[disk]
	if ds == nil {
		ds = &dirtyState{}
		byDisk[disk] = ds
	}
	ds.hasDirty = has
	if !has {
		ds.nr = 0
	}
	if has {
		m.armFlush()
	}
}

func (m *Manager) noteNr(dom store.DomID, disk string, nr int64) {
	byDisk := m.dirty[dom]
	if byDisk == nil {
		return
	}
	if ds := byDisk[disk]; ds != nil {
		if nr > ds.nr {
			ds.lastGrow = m.k.Now()
		}
		ds.nr = nr
	}
}

func (m *Manager) anyDirty() bool {
	for _, byDisk := range m.dirty {
		for _, ds := range byDisk {
			if ds.hasDirty {
				return true
			}
		}
	}
	return false
}

// armFlush schedules idle-bandwidth checks while dirty VMs exist — the
// lazy-timer pattern keeps the event calendar empty when there is nothing
// to do, matching the paper's "only reacts to certain system events".
func (m *Manager) armFlush() {
	if !m.pol.Flush || m.flushTimer != nil {
		return
	}
	m.flushTimer = m.k.After(m.cfg.FlushCheckInterval, func() {
		m.flushTimer = nil
		m.flushTick()
		if m.anyDirty() {
			m.armFlush()
		}
	})
}

// flushTick is Algorithm 1's management branch: when the device has low
// utilization, tell the guest with the most dirty pages to flush.
func (m *Manager) flushTick() {
	now := m.k.Now()
	if m.outstandingDom != 0 {
		if now-m.outstandingSince < m.cfg.FlushTimeout {
			return
		}
		m.outstandingDom = 0
	}
	// Algorithm 1's trigger, taken literally: act only when the device
	// moves less than one tenth of its capacity. A busy device means some
	// VM is in a latency-sensitive phase — flushing now would hurt it.
	dev := m.h.Device()
	if dev.BandwidthBps(now) >= m.cfg.FlushUtilFrac*dev.CapacityBps() {
		return
	}
	if m.flushNotices > 0 && now-m.lastFlushNotice < m.cfg.FlushCooldown {
		return
	}
	// i = argmax_i nr_i over guests with dirty pages, skipping guests
	// whose dirty set is still growing — they are mid-write-burst, and a
	// sync() now would stall exactly the VM the policy is protecting.
	var bestDom store.DomID
	var bestDisk string
	var bestNr int64 = -1
	for dom, byDisk := range m.dirty {
		for disk, ds := range byDisk {
			if ds.hasDirty && ds.nr > bestNr && now-ds.lastGrow > 200*sim.Millisecond {
				bestDom, bestDisk, bestNr = dom, disk, ds.nr
			}
		}
	}
	if bestNr < 0 || bestNr*4096 < m.cfg.MinFlushBytes {
		return
	}
	m.flushNotices++
	m.lastFlushNotice = now
	m.outstandingDom, m.outstandingDisk, m.outstandingSince = bestDom, bestDisk, now
	if m.rec != nil {
		m.rec.Record(trace.Record{
			Kind: trace.KindFlushOrder, Dom: int(bestDom), Disk: bestDisk,
			NrDirty: bestNr, DeviceBps: dev.BandwidthBps(now),
			UtilFrac: dev.UtilFraction(now),
		})
	}
	m.st.WriteBool(store.Dom0, absDiskKey(bestDom, bestDisk, keyFlushNow), true)
}

// --- Algorithm 2: policy for congestion control ----------------------------

// handleCongestQuery answers a guest's congestion query: confirm when the
// host device is genuinely overcrowded, otherwise release the guest.
func (m *Manager) handleCongestQuery(dom store.DomID, disk string) {
	// Reset the query flag so subsequent queries re-fire the watch.
	m.st.WriteBool(store.Dom0, absDiskKey(dom, disk, keyCongestQuery), false)
	if m.h.IOCongested() {
		m.confirms++
		m.recordCongestion(trace.KindCongestConfirm, dom, disk)
		m.st.WriteBool(store.Dom0, absDiskKey(dom, disk, keyCongested), true)
		for _, e := range m.held {
			if e.dom == dom && e.disk == disk {
				return
			}
		}
		m.held = append(m.held, congEntry{dom: dom, disk: disk})
		m.armCongestion()
		return
	}
	m.vetoes++
	m.recordCongestion(trace.KindCongestVeto, dom, disk)
	m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest, true)
}

// recordCongestion traces an Algorithm 2 verdict with the host queue
// depths that justified it.
func (m *Manager) recordCongestion(kind trace.Kind, dom store.DomID, disk string) {
	if m.rec == nil {
		return
	}
	m.rec.Record(trace.Record{
		Kind: kind, Dom: int(dom), Disk: disk,
		QueueDepth: m.h.Cgroup().Backlog(),
		DevPending: m.h.Device().Pending(),
	})
}

func (m *Manager) armCongestion() {
	if m.congTimer != nil {
		return
	}
	m.congTimer = m.k.After(m.cfg.CongestionCheckInterval, func() {
		m.congTimer = nil
		m.congestionTick()
		if len(m.held) > 0 {
			m.armCongestion()
		}
	})
}

// congestionTick is Algorithm 2's relief branch: once the host device is
// no longer congested, release held VMs in FIFO order, interleaved with a
// random 0–99 ms stagger.
func (m *Manager) congestionTick() {
	if len(m.held) == 0 || m.h.IOCongested() {
		return
	}
	var offset sim.Duration
	for _, e := range m.held {
		dom, disk := e.dom, e.disk
		m.relieves++
		m.k.After(offset, func() {
			m.recordCongestion(trace.KindCongestRelease, dom, disk)
			m.st.WriteBool(store.Dom0, store.DomainPath(dom)+"/"+keyReleaseRequest, true)
		})
		offset += sim.Duration(m.rng.Int63n(int64(m.cfg.ReleaseStaggerMax)))
	}
	m.held = m.held[:0]
}

// --- Sec. 3.3: inter-domain I/O co-scheduling -------------------------------

func (m *Manager) armCosched() {
	if !m.pol.Cosched || m.coschedTimer != nil {
		return
	}
	// Sample faster than the apply cadence so the >50 %-change trigger
	// can fire early, as the paper specifies.
	period := m.cfg.CoschedInterval / 5
	if period <= 0 {
		period = 200 * sim.Millisecond
	}
	m.coschedTimer = m.k.After(period, func() {
		m.coschedTimer = nil
		active := m.coschedTick()
		if active {
			m.armCosched()
		}
	})
}

// coschedTick samples per-core latencies, publishes redistribution targets
// for cross-socket VMs, computes per-VM per-socket I/O shares, and applies
// DRR quanta and cgroup weights. It reports whether co-scheduling should
// keep sampling (any I/O-core traffic or cross-socket guests present).
func (m *Manager) coschedTick() bool {
	cores := m.h.IOCores()
	now := m.k.Now()
	if len(cores) == 0 || len(m.drivers) == 0 {
		return false
	}
	// Monitoring module: collect L_i per core.
	lat := make([]float64, len(cores))
	var anyTraffic bool
	for i, c := range cores {
		lat[i] = c.MeanLatency(now)
		if c.Processed() > 0 {
			anyTraffic = true
		}
	}
	// Change detection on the max/min latency ratio.
	ratio := maxOf(lat) / minOf(lat)
	due := now-m.lastApply >= m.cfg.CoschedInterval
	changed := m.lastRatio > 0 && relDelta(ratio, m.lastRatio) > m.cfg.CoschedChangeFrac
	if !due && !changed {
		return anyTraffic || m.crossSocketGuestExists()
	}
	m.lastApply = now
	m.lastRatio = ratio
	m.coschedRuns++
	if m.rec != nil {
		m.rec.Record(trace.Record{
			Kind: trace.KindCoschedUpdate,
			CoreLatency: append([]float64(nil), lat...),
			Weight:      ratio,
		})
	}

	// Weight targets: fraction on socket i ∝ 1/L_i (the paper's inverse-
	// proportional distribution). Published only when some core is
	// genuinely contended; otherwise placement is left alone.
	var invSum float64
	for _, l := range lat {
		invSum += 1 / l
	}
	contended := maxOf(lat) >= m.cfg.CoschedMinLatency.Seconds()
	for dom, drv := range m.drivers {
		if !contended || len(drv.g.Sockets()) < 2 || m.coschedOff[dom] {
			continue
		}
		for _, s := range drv.g.Sockets() {
			if s >= 0 && s < len(lat) {
				f := (1 / lat[s]) / invSum
				// Keep every socket carrying some share so the
				// distribution converges instead of oscillating between
				// extremes.
				if f < 0.1 {
					f = 0.1
				}
				if f > 0.9 {
					f = 0.9
				}
				m.st.WriteFloat(store.Dom0, store.DomainPath(dom)+"/"+socketKey(keyTargetPrefix, s), f)
			}
		}
	}

	// Shares: S_SKT = W_SKT / ΣP · S^(VM); equal S^(VM) across enabled
	// guests unless overridden in the store.
	nGuests := len(m.drivers)
	bwMax := m.h.Device().CapacityBps()
	type coreShare struct{ sum float64 }
	shares := make([]coreShare, len(cores))
	for dom, drv := range m.drivers {
		if m.coschedOff[dom] {
			continue
		}
		base := store.DomainPath(dom)
		vmShare, _ := m.st.ReadFloat(store.Dom0, base+"/"+keyVMShare, 1.0/float64(nGuests))
		totalW, _ := m.st.ReadFloat(store.Dom0, base+"/"+keyTotalWeight, 0)
		if totalW <= 0 {
			continue
		}
		for _, s := range drv.g.Sockets() {
			w, _ := m.st.ReadFloat(store.Dom0, base+"/"+socketKey(keyWeightPrefix, s), 0)
			sSkt := w / totalW * vmShare
			m.st.WriteFloat(store.Dom0, base+"/"+socketKey(keySharePrefix, s), sSkt)
			if s >= 0 && s < len(cores) {
				// Q_i = BWmax · S_SKT, scaled to a 1 ms round.
				cores[s].SetQuantum(dom, bwMax*sSkt/1000)
				shares[s].sum += sSkt
			}
		}
	}
	// The sum of shares on a socket is its I/O core's weight at the
	// device (Sec. 3.3: "cgroups with these I/O cores' weights").
	for i, c := range cores {
		w := shares[i].sum
		if w <= 0 {
			w = 0.01
		}
		m.h.Cgroup().SetWeight(c.ID(), w)
	}
	return anyTraffic || m.crossSocketGuestExists()
}

func (m *Manager) crossSocketGuestExists() bool {
	for _, drv := range m.drivers {
		if len(drv.g.Sockets()) > 1 {
			return true
		}
	}
	return false
}

func maxOf(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x > v {
			v = x
		}
	}
	return v
}

func minOf(xs []float64) float64 {
	v := xs[0]
	for _, x := range xs[1:] {
		if x < v {
			v = x
		}
	}
	return v
}

func relDelta(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if b == 0 {
		return 0
	}
	return d / b
}

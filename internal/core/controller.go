package core

import (
	"sort"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

// Controller is one pluggable policy unit: the paper's management module
// hosts three of them (flush control, congestion control, co-scheduling),
// the baselines package contributes DIF and SDC, and a new policy plugs
// in by implementing this interface and registering with the platform or
// the manager (docs/ARCHITECTURE.md walks through a complete example).
//
// The lifecycle calls are per-guest: Attach installs whatever per-VM
// hooks the policy needs when a guest is enabled; Detach forgets every
// piece of policy state about a removed guest and must be safe to call
// for guests that were never attached.
//
// Controllers that need more than lifecycle calls implement the optional
// capability interfaces: StoreHandler to receive routed system-store
// notifications, FallbackHook to react when the liveness middleware
// demotes or restores a guest. Periodic work runs through a cadence
// timer rather than a free-running loop, so the event calendar stays
// empty while there is nothing to do.
type Controller interface {
	// Name identifies the policy in registries and diagnostics.
	Name() string
	// Attach installs the policy's per-guest hooks.
	Attach(rt *hypervisor.GuestRuntime)
	// Detach forgets all state about dom.
	Detach(dom store.DomID)
}

// StoreEvent is one parsed system-store notification, routed to a
// controller by the manager's dispatcher. Disk is empty for domain-level
// keys; Key is the path relative to /local/domain/<id> with any
// virt-dev/<disk>/ prefix stripped.
type StoreEvent struct {
	Dom   store.DomID
	Disk  string
	Key   string
	Value string
}

// Routes declares which store keys a controller wants. The manager owns
// the single privileged watch over /local/domain and fans matching
// events out to registered handlers; a controller never installs its own
// global watch.
type Routes struct {
	// DiskKeys match virt-dev/<disk>/<key> for any disk.
	DiskKeys []string
	// DomainKeys match a domain-relative key exactly.
	DomainKeys []string
	// DomainPrefixes match any domain-relative key with the prefix.
	DomainPrefixes []string
}

// StoreHandler is the store-routing capability of a Controller.
type StoreHandler interface {
	Routes() Routes
	OnStoreEvent(ev StoreEvent)
}

// FallbackHook is the degradation capability of a Controller: the
// liveness middleware calls OnFallback when it demotes a guest to
// Baseline behavior and OnRestore when the guest earns its way back, so
// each policy can unstick anything it was holding or expecting from the
// guest (docs/FAULTS.md).
type FallbackHook interface {
	OnFallback(dom store.DomID)
	OnRestore(dom store.DomID)
}

// cadence is the shared tick scheduler: a lazy re-arming timer. arm is a
// no-op while a tick is pending; when the timer fires, tick runs and the
// cadence re-arms only if tick reports more work. The pattern keeps the
// event calendar empty when a policy has nothing to watch — the paper's
// management module "only reacts to certain system events".
type cadence struct {
	k      *sim.Kernel
	period sim.Duration
	tick   func() bool // run one tick; report whether to stay armed
	timer  *sim.Event
}

func (c *cadence) arm() {
	if c.timer != nil {
		return
	}
	c.timer = c.k.After(c.period, func() {
		c.timer = nil
		if c.tick() {
			c.arm()
		}
	})
}

// sortedDomIDs returns a per-domain map's keys in ascending order. Policy
// loops iterate guests through it so fixed-seed runs replay identically:
// Go map order would otherwise leak into store-write order, and with it
// into the decision trace and every downstream timing.
func sortedDomIDs[V any](m map[store.DomID]V) []store.DomID {
	out := make([]store.DomID, 0, len(m))
	for dom := range m {
		out = append(out, dom)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sortedNames returns a per-disk map's keys in ascending order, for the
// same determinism reason as sortedDomIDs.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

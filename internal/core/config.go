package core

import "iorchestra/internal/sim"

// Policies selects which collaborative functions the manager runs; the
// paper's ablation experiments enable them one at a time (Sec. 5.3–5.5).
type Policies struct {
	Flush      bool // Algorithm 1: cross-domain dirty-page flush control
	Congestion bool // Algorithm 2: collaborative congestion control
	Cosched    bool // Sec. 3.3: inter-domain I/O co-scheduling
	GState     bool // elastic G-states: tiered-SLA performance states (docs/GSTATES.md)
}

// All enables every paper policy — the full IOrchestra configuration.
// GState is a post-paper extension and stays opt-in: it assumes the
// backend I/O model and is unsupported alongside Cosched, which drives
// the same cgroup weights.
func All() Policies { return Policies{Flush: true, Congestion: true, Cosched: true} }

// ManagerConfig tunes the hypervisor-side modules.
type ManagerConfig struct {
	// FlushUtilFrac: flush when device bandwidth is below this fraction
	// of capacity (paper: one tenth).
	FlushUtilFrac float64
	// FlushCheckInterval paces idle-bandwidth checks while dirty VMs exist.
	FlushCheckInterval sim.Duration
	// FlushTimeout abandons an unanswered flush_now.
	FlushTimeout sim.Duration
	// MinFlushBytes: do not bother a guest whose dirty set is smaller
	// (avoids churning sync() for crumbs).
	MinFlushBytes int64
	// FlushCooldown spaces successive flush notices.
	FlushCooldown sim.Duration
	// CongestionCheckInterval paces host-relief checks while VMs are held.
	CongestionCheckInterval sim.Duration
	// ReleaseStaggerMax is the FIFO wake-up stagger bound (paper: 0–99 ms).
	ReleaseStaggerMax sim.Duration
	// CoschedInterval is the weight-update cadence (paper: every second).
	CoschedInterval sim.Duration
	// CoschedChangeFrac forces an early update when the core-latency
	// ratio shifts by more than this fraction (paper: 50 %).
	CoschedChangeFrac float64
	// CoschedMinLatency gates process redistribution: below this on-core
	// latency there is no contention worth rebalancing, and migrations
	// would only disturb cache and CPU co-location.
	CoschedMinLatency sim.Duration

	// Elastic G-states (docs/GSTATES.md).

	// GStateInterval paces the G-state control loop (default 100 ms).
	GStateInterval sim.Duration
	// GStateHighUtil is the device-utilization fraction at or above
	// which a tick counts as pressure (default 0.85); host congestion
	// counts as pressure regardless.
	GStateHighUtil float64
	// GStateLowUtil is the utilization fraction at or below which an
	// uncongested tick counts as relief (default 0.55). The band between
	// the two thresholds is neutral and resets both hysteresis counters.
	GStateLowUtil float64
	// GStateDemoteAfter is how many consecutive pressure ticks trigger
	// one demotion step (default 3).
	GStateDemoteAfter int
	// GStatePromoteAfter is how many consecutive relief ticks trigger
	// one promotion step (default 5 — recovery is deliberately slower
	// than demotion so the ladder does not oscillate).
	GStatePromoteAfter int

	// Graceful degradation (docs/FAULTS.md). The paper's host waits on
	// guest cooperation; these bounds make every wait finite so one bad
	// guest can never stall a loop or starve siblings.

	// HeartbeatTimeout demotes a guest whose iorchestra/heartbeat is
	// older than this to Baseline behavior (default 350 ms — three
	// missed 100 ms beats plus delivery slack). <= 0 disables the check.
	HeartbeatTimeout sim.Duration
	// FlushMaxRetries bounds re-issued flush orders per (guest, disk)
	// after a FlushTimeout expiry before the guest falls back.
	FlushMaxRetries int
	// ReleaseAckTimeout re-publishes an unacknowledged release_request
	// (the ack is the guest's reset to 0); <= 0 disables retries.
	ReleaseAckTimeout sim.Duration
	// ReleaseMaxRetries bounds release re-publishes before fallback.
	ReleaseMaxRetries int
	// HoldDeadline force-releases a guest held in congestion avoidance
	// this long even if the host still looks congested — the safety
	// valve against a stuck device starving held guests forever.
	HoldDeadline sim.Duration
	// FallbackPenalty is how long a fallen-back guest must heartbeat
	// again before it is restored (a driver re-registration restores it
	// immediately).
	FallbackPenalty sim.Duration
}

func (c *ManagerConfig) fillDefaults() {
	if c.FlushUtilFrac <= 0 {
		c.FlushUtilFrac = 0.1
	}
	if c.FlushCheckInterval <= 0 {
		c.FlushCheckInterval = 50 * sim.Millisecond
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = sim.Second
	}
	if c.MinFlushBytes <= 0 {
		c.MinFlushBytes = 8 << 20
	}
	if c.FlushCooldown <= 0 {
		c.FlushCooldown = 200 * sim.Millisecond
	}
	if c.CongestionCheckInterval <= 0 {
		c.CongestionCheckInterval = 5 * sim.Millisecond
	}
	if c.ReleaseStaggerMax <= 0 {
		c.ReleaseStaggerMax = 99 * sim.Millisecond
	}
	if c.CoschedInterval <= 0 {
		c.CoschedInterval = sim.Second
	}
	if c.CoschedChangeFrac <= 0 {
		c.CoschedChangeFrac = 0.5
	}
	if c.CoschedMinLatency <= 0 {
		c.CoschedMinLatency = 150 * sim.Microsecond
	}
	if c.GStateInterval <= 0 {
		c.GStateInterval = 100 * sim.Millisecond
	}
	if c.GStateHighUtil <= 0 {
		c.GStateHighUtil = 0.85
	}
	if c.GStateLowUtil <= 0 {
		c.GStateLowUtil = 0.55
	}
	if c.GStateDemoteAfter <= 0 {
		c.GStateDemoteAfter = 3
	}
	if c.GStatePromoteAfter <= 0 {
		c.GStatePromoteAfter = 5
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 350 * sim.Millisecond
	}
	if c.FlushMaxRetries <= 0 {
		c.FlushMaxRetries = 2
	}
	if c.ReleaseAckTimeout <= 0 {
		c.ReleaseAckTimeout = 100 * sim.Millisecond
	}
	if c.ReleaseMaxRetries <= 0 {
		c.ReleaseMaxRetries = 3
	}
	if c.HoldDeadline <= 0 {
		c.HoldDeadline = 5 * sim.Second
	}
	if c.FallbackPenalty <= 0 {
		c.FallbackPenalty = 2 * sim.Second
	}
}

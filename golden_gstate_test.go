package iorchestra

// Golden decision-trace parity for the G-state subsystem
// (docs/GSTATES.md): a fixed-seed tiered population under sustained
// congestion pins the controller's admissions, demotion ladder and
// SLA-violation onsets as NDJSON, byte for byte, alongside the four
// per-system fixtures of golden_test.go. Regenerate intentionally with
//
//	go test -run TestGoldenGStateTraceParity -update .
//
// and review the fixture diff like code.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"iorchestra/internal/blkio"
	"iorchestra/internal/gstate"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/trace"
	"iorchestra/internal/workload"
)

// goldenGStateDur covers admission, the full demotion ladder down to
// the tier floors, and several violation episodes.
const goldenGStateDur = 6 * Second

// tieredGoldenVM is the SLA experiment's congestion-prone profile: a
// declared tier plus eight readahead streams per guest.
func tieredGoldenVM(p *Platform, i int, tier gstate.Tier) {
	rt := p.NewTieredVM(tier, gstate.SLA{}, 2, 2, guest.DiskConfig{
		Name:        "xvda",
		QueueConfig: blkio.Config{Limit: 68, MaxMerge: 128 << 10},
		MaxTransfer: 64 << 10,
	})
	ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], 8, 1<<30, 1<<20,
		p.Rng.Fork(fmt.Sprintf("gs%d", i)))
	ms.Start()
}

// goldenGStateScenario runs the balanced tier mix on IOrchestra with
// the G-state controller enabled (flush and congestion ride along;
// co-scheduling is the documented unsupported combination). Host
// dispatch concurrency is bounded so the weighted cgroup is the
// queueing point — the same setup the tiered experiments use.
func goldenGStateScenario(t testing.TB, seed uint64) []trace.Record {
	t.Helper()
	p := NewPlatform(SystemIOrchestra, seed,
		WithTracing(goldenTraceCap),
		WithPolicies(Policies{Flush: true, Congestion: true, GState: true}),
		WithHostConfig(hypervisor.Config{MaxDeviceInFlight: 8}))
	for i, tier := range []gstate.Tier{
		gstate.Gold, gstate.Gold, gstate.Silver, gstate.Silver, gstate.Bronze, gstate.Bronze,
	} {
		tieredGoldenVM(p, i, tier)
	}
	p.RunFor(goldenGStateDur)
	if d := p.Trace.Dropped(); d > 0 {
		t.Fatalf("trace ring evicted %d records; raise goldenTraceCap", d)
	}
	return filterGolden(p.Trace.Events())
}

var goldenGStatePath = filepath.Join("testdata", "golden", "gstate.ndjson")

// TestGoldenGStateTraceParity replays the fixed-seed tiered scenario
// and requires byte parity with the checked-in fixture — plus presence
// of the G-state decision kinds, so the fixture can never silently
// decay into one that exercises nothing.
func TestGoldenGStateTraceParity(t *testing.T) {
	events := goldenGStateScenario(t, goldenSeed)
	for _, kind := range []trace.Kind{
		trace.KindGStateAdmit, trace.KindGStateDemote, trace.KindGStateViolation,
	} {
		found := false
		for _, e := range events {
			if e.Kind == kind {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("golden gstate scenario emitted no %s records; the fixture would pin nothing", kind)
		}
	}
	got := encodeNDJSON(t, events)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenGStatePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenGStatePath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d records)", goldenGStatePath, bytes.Count(got, []byte("\n")))
		return
	}
	want, err := os.ReadFile(goldenGStatePath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gstate decision trace diverged from %s:\n%s", goldenGStatePath, firstDiff(want, got))
	}
}

// TestGoldenGStateDetectsPerturbation guards the harness: a different
// seed must not reproduce the fixture.
func TestGoldenGStateDetectsPerturbation(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures being rewritten")
	}
	want, err := os.ReadFile(goldenGStatePath)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	got := encodeNDJSON(t, goldenGStateScenario(t, goldenSeed+1))
	if bytes.Equal(got, want) {
		t.Fatal("perturbed seed reproduced the golden gstate trace; harness is not sensitive")
	}
}

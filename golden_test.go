package iorchestra

// Golden decision-trace parity harness. For a fixed seed, every system's
// control-plane decision stream — flush orders, congestion verdicts,
// co-scheduling updates, degradation events, injected faults — is
// captured as NDJSON in testdata/golden/ and must be byte-identical on
// every run. The fixtures pin the behavior of the management module
// across refactors: a change that reorders a single store write or
// consumes one extra random draw shifts the global sequence numbers and
// fails parity.
//
// Regenerate after an intentional behavior change with
//
//	go test -run TestGoldenTraceParity -update ./...
//
// and review the fixture diff like code.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"iorchestra/internal/hypervisor"
	"iorchestra/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden decision-trace fixtures")

const (
	// goldenSeed fully determines every golden scenario.
	goldenSeed uint64 = 1315
	// goldenFlushDur covers two full burst-on/off cycles of the
	// flush-prone workload (1.5s on / 3.5s off): Algorithm 1 orders fire
	// in the off phase, and crash → heartbeat-miss → fallback → restore
	// cycles need the extra headroom.
	goldenFlushDur = 12 * Second
	// goldenMixedDur is enough for congestion verdicts and co-scheduling
	// updates (they fire within milliseconds under the 8-stream load) and
	// in the faulted variant reaches past the 4.1s driver restart so the
	// fallback → restore half of the cycle is pinned too.
	goldenMixedDur = 6 * Second
	// goldenFaultSpec exercises every fault family the injector knows
	// (docs/FAULTS.md) so the degradation machinery is pinned too. The
	// crash lands at the start of the flush workload's burst-off phase
	// and outlasts the heartbeat timeout, so the decision loops catch the
	// stale heartbeat and the fallback → penalty → restore cycle appears
	// in the fixture.
	goldenFaultSpec = "uncoop=0.25,crash=0.5@1600ms+2500ms,stucksync=0.4," +
		"watchdrop=0.05,watchdelay=2ms:0.15,stalewrite=0.03,member=3:6"
	// goldenTraceCap must retain the whole run: an evicted record would
	// silently shrink the fixture. goldenScenario fails if anything drops.
	goldenTraceCap = 1 << 19
)

// goldenScenario runs two fixed sub-populations on sys and concatenates
// their control-plane records. The flush part runs three flush-prone VMs
// alone — only with the device otherwise quiet do Algorithm 1 flush
// orders (and, in the faulted variant, heartbeat-miss fallback cycles)
// actually fire. The mixed part adds congestion-prone multi-stream VMs
// so Algorithm 2 verdicts and Sec. 3.3 co-scheduling updates appear.
func goldenScenario(t testing.TB, sys System, faulted bool, seed uint64) []trace.Record {
	t.Helper()
	flush := goldenRun(t, sys, faulted, seed, goldenFlushDur, func(p *Platform) {
		flushProneVM(p, 0)
		flushProneVM(p, 1)
		flushProneVM(p, 2)
	})
	mixed := goldenRun(t, sys, faulted, seed^0x9e3779b97f4a7c15, goldenMixedDur, func(p *Platform) {
		flushProneVM(p, 0)
		flushProneVM(p, 1)
		congestProneVM(p, 2)
		congestProneVM(p, 3)
	})
	return append(flush, mixed...)
}

func goldenRun(t testing.TB, sys System, faulted bool, seed uint64, dur Duration, populate func(*Platform)) []trace.Record {
	t.Helper()
	opts := []Option{WithTracing(goldenTraceCap)}
	if faulted {
		spec, err := ParseFaultSpec(goldenFaultSpec)
		if err != nil {
			t.Fatal(err)
		}
		opts = append(opts, WithFaults(spec))
	}
	p := NewPlatform(sys, seed, opts...)
	populate(p)
	p.RunFor(dur)
	if d := p.Trace.Dropped(); d > 0 {
		t.Fatalf("trace ring evicted %d records; raise goldenTraceCap", d)
	}
	return filterGolden(p.Trace.Events())
}

// filterGolden keeps the control-plane decision records and drops the
// bulky per-request device path (dev.*) and raw store traffic (store.*).
// The retained records keep their original Seq values, which are stamped
// across ALL records — so the fixture still pins the full interleaving of
// store writes, watch fires and device events between decisions.
func filterGolden(events []trace.Record) []trace.Record {
	out := make([]trace.Record, 0, len(events))
	for _, e := range events {
		switch e.Kind {
		case trace.KindStoreWrite, trace.KindStoreWatch,
			trace.KindDevQueue, trace.KindDevIssue,
			trace.KindDevComplete, trace.KindDevService:
			continue
		}
		out = append(out, e)
	}
	return out
}

// goldenPath names one fixture: testdata/golden/<system>[_faults].ndjson.
func goldenPath(sys System, faulted bool) string {
	name := strings.ToLower(sys.String())
	if faulted {
		name += "_faults"
	}
	return filepath.Join("testdata", "golden", name+".ndjson")
}

func encodeNDJSON(t testing.TB, events []trace.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteNDJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraceParity replays the fixed-seed scenario on all four
// systems, clean and faulted, and requires the NDJSON decision trace to
// match the checked-in fixture byte for byte.
func TestGoldenTraceParity(t *testing.T) {
	for _, sys := range Systems() {
		for _, faulted := range []bool{false, true} {
			sys, faulted := sys, faulted
			name := strings.ToLower(sys.String())
			if faulted {
				name += "_faults"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				got := encodeNDJSON(t, goldenScenario(t, sys, faulted, goldenSeed))
				path := goldenPath(sys, faulted)
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					t.Logf("wrote %s (%d records)", path, bytes.Count(got, []byte("\n")))
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing fixture (run with -update to create): %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("decision trace diverged from %s:\n%s", path, firstDiff(want, got))
				}
			})
		}
	}
}

// firstDiff locates the first differing NDJSON line for a readable
// failure message.
func firstDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("record count: golden %d lines, got %d lines", len(wl), len(gl))
}

// TestGoldenHarnessDetectsPerturbation guards the harness itself: a
// different seed must NOT reproduce the fixture. If it did, the scenario
// would be too inert to catch a real behavior change.
func TestGoldenHarnessDetectsPerturbation(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures being rewritten")
	}
	want, err := os.ReadFile(goldenPath(SystemIOrchestra, false))
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	got := encodeNDJSON(t, goldenScenario(t, SystemIOrchestra, false, goldenSeed+1))
	if bytes.Equal(got, want) {
		t.Fatal("perturbed seed reproduced the golden trace; harness is not sensitive")
	}
}

// TestGoldenCatchesIndexOrderDrift guards the incremental argmax: with
// the Monitor's settled-index comparison deliberately inverted (argmin,
// ties to the highest dom), the same seed must NOT reproduce the
// fixture. This pins that the fixtures encode the exact winner order of
// the replaced O(n) scan — an index whose ordering silently drifted
// from those semantics would fail trace parity rather than ship.
func TestGoldenCatchesIndexOrderDrift(t *testing.T) {
	if *updateGolden {
		t.Skip("fixtures being rewritten")
	}
	want, err := os.ReadFile(goldenPath(SystemIOrchestra, false))
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	hypervisor.DirtyOrderInvertedForTest = true
	defer func() { hypervisor.DirtyOrderInvertedForTest = false }()
	got := encodeNDJSON(t, goldenScenario(t, SystemIOrchestra, false, goldenSeed))
	if bytes.Equal(got, want) {
		t.Fatal("inverted settled-index order reproduced the golden trace; the fixtures do not pin the argmax winner order")
	}
}

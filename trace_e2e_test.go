package iorchestra

// End-to-end decision-trace coverage: a traced platform run must emit the
// paper's three decision families (ISSUE acceptance criterion) — flush
// control (Algorithm 1), congestion control (Algorithm 2) and
// co-scheduling (Sec. 3.3) — and the resulting stream must survive the
// NDJSON export/import cycle that cmd/iorchestra-trace consumes.

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"iorchestra/internal/blkio"
	"iorchestra/internal/guest"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/trace"
	"iorchestra/internal/workload"
)

// flushProneVM is the Fig. 8 profile: a small cache with low dirty ratios
// under a write-heavy FileBench fileserver piles up dirty pages fast.
func flushProneVM(p *Platform, i int) {
	rt := p.NewVM(1, 1, guest.DiskConfig{
		Name: "xvda",
		CacheConfig: pagecache.Config{
			TotalPages:      (1 << 30) / pagecache.PageSize,
			DirtyRatio:      0.2,
			BackgroundRatio: 0.1,
			WritebackWindow: 64,
		},
	})
	fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
		Threads: 2, MeanFileSize: 1 << 20, Think: 6 * sim.Millisecond,
		WriteFrac: 0.8, AppendFrac: 0.1, ReadFrac: 0.05,
		BurstOn: 1500 * sim.Millisecond, BurstOff: 3500 * sim.Millisecond,
	}, p.Rng.Fork(fmt.Sprintf("fs%d", i)))
	fs.Start()
}

// congestProneVM is the Sec. 2 motivation profile: eight readahead streams
// against a small ring cross the 7/8 threshold without real congestion.
func congestProneVM(p *Platform, i int) {
	rt := p.NewVM(4, 4, guest.DiskConfig{
		Name:        "xvda",
		QueueConfig: blkio.Config{Limit: 68, MaxMerge: 128 << 10},
		MaxTransfer: 64 << 10,
	})
	ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], 8, 1<<30, 1<<20,
		p.Rng.Fork(fmt.Sprintf("ms%d", i)))
	ms.Start()
}

func requireKinds(t *testing.T, rec *trace.Recorder, kinds ...trace.Kind) {
	t.Helper()
	for _, k := range kinds {
		if rec.Count(k) == 0 {
			t.Errorf("no %s events recorded; counts = %v", k, rec.Counts())
		}
	}
}

func TestTracedFlushDecisions(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 42, WithTracing(0),
		WithPolicies(Policies{Flush: true}))
	for i := 0; i < 4; i++ {
		flushProneVM(p, i)
	}
	p.RunFor(30 * Second)
	requireKinds(t, p.Trace, trace.KindFlushOrder, trace.KindFlushSync,
		trace.KindStoreWrite, trace.KindStoreWatch)
	// Every flush order must carry the evidence Algorithm 1 acted on.
	for _, e := range p.Trace.Events() {
		if e.Kind == trace.KindFlushOrder {
			if e.NrDirty <= 0 || e.Disk == "" || e.Dom == 0 {
				t.Fatalf("flush.order missing decision evidence: %+v", e)
			}
		}
	}
}

func TestTracedCongestionDecisions(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 42, WithTracing(0),
		WithPolicies(Policies{Congestion: true}))
	for i := 0; i < 2; i++ {
		congestProneVM(p, i)
	}
	p.RunFor(5 * Second)
	requireKinds(t, p.Trace, trace.KindCongestEngage, trace.KindQueueRelease)
	if p.Trace.Count(trace.KindCongestVeto)+p.Trace.Count(trace.KindCongestConfirm) == 0 {
		t.Errorf("no host congestion verdicts; counts = %v", p.Trace.Counts())
	}
}

func TestTracedCoschedDecisions(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 42, WithTracing(0))
	for i := 0; i < 2; i++ {
		congestProneVM(p, i)
	}
	p.RunFor(5 * Second)
	requireKinds(t, p.Trace, trace.KindCoschedUpdate, trace.KindDevComplete)
}

// TestTraceNDJSONExportImport: the full stream round-trips through the
// NDJSON format bit-exactly and the summary names the decisions, which is
// what cmd/iorchestra-trace prints.
func TestTraceNDJSONExportImport(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 7, WithTracing(4096),
		WithPolicies(Policies{Congestion: true}))
	congestProneVM(p, 0)
	p.RunFor(3 * Second)

	events := p.Trace.Events()
	if len(events) == 0 {
		t.Fatal("no events retained")
	}
	var buf bytes.Buffer
	if err := p.Trace.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Fatalf("NDJSON round trip mismatch: %d events out, %d back", len(events), len(back))
	}
	sum := trace.Summarize(back)
	if sum.Total != len(events) {
		t.Fatalf("summary total = %d, want %d", sum.Total, len(events))
	}
	if text := sum.Format(); len(text) == 0 {
		t.Fatal("empty summary")
	}
}

package iorchestra

import (
	"testing"

	"iorchestra/internal/hypervisor"
)

func TestSystemsOrderAndNames(t *testing.T) {
	ss := Systems()
	want := []string{"Baseline", "SDC", "DIF", "IOrchestra"}
	if len(ss) != 4 {
		t.Fatalf("Systems = %v", ss)
	}
	for i, s := range ss {
		if s.String() != want[i] {
			t.Fatalf("Systems()[%d] = %v, want %s", i, s, want[i])
		}
	}
	if System(99).String() == "" {
		t.Fatal("unknown system has empty name")
	}
}

func TestPlatformComponentsPerSystem(t *testing.T) {
	for _, sys := range Systems() {
		p := NewPlatform(sys, 1)
		if p.Host == nil || p.Kernel == nil {
			t.Fatalf("%v: missing host/kernel", sys)
		}
		switch sys {
		case SystemIOrchestra:
			if p.Manager == nil {
				t.Fatalf("%v: no manager", sys)
			}
			if p.Host.Mode() != hypervisor.ModeDedicated {
				t.Fatalf("%v: wrong mode", sys)
			}
		case SystemSDC:
			if p.SDC == nil {
				t.Fatalf("%v: no SDC", sys)
			}
			if p.Host.Mode() != hypervisor.ModeDedicated {
				t.Fatalf("%v: wrong mode", sys)
			}
		case SystemDIF:
			if p.DIF == nil {
				t.Fatalf("%v: no DIF", sys)
			}
			if p.Host.Mode() != hypervisor.ModeBackend {
				t.Fatalf("%v: wrong mode", sys)
			}
		case SystemBaseline:
			if p.Manager != nil || p.DIF != nil || p.SDC != nil {
				t.Fatalf("%v: unexpected components", sys)
			}
		}
	}
}

func TestNewVMWorksOnAllSystems(t *testing.T) {
	for _, sys := range Systems() {
		p := NewPlatform(sys, 2)
		vm := p.NewVM(2, 4)
		if vm.G.NumVCPUs() != 2 {
			t.Fatalf("%v: vcpus = %d", sys, vm.G.NumVCPUs())
		}
		if vm.G.MemBytes() != 4<<30 {
			t.Fatalf("%v: mem = %d", sys, vm.G.MemBytes())
		}
		if len(vm.G.Disks()) != 1 {
			t.Fatalf("%v: disks = %d", sys, len(vm.G.Disks()))
		}
		// A read completes end to end on every platform.
		proc := vm.G.NewProcess(1)
		done := false
		vm.G.Disks()[0].Read(proc, 4096, false, func() { done = true })
		p.RunFor(Second)
		if !done {
			t.Fatalf("%v: read lost", sys)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() Time {
		p := NewPlatform(SystemIOrchestra, 7)
		vm := p.NewVM(2, 4)
		proc := vm.G.NewProcess(1)
		var last Time
		n := 0
		var issue func()
		issue = func() {
			if n >= 200 {
				return
			}
			n++
			vm.G.Disks()[0].Read(proc, 64<<10, false, func() {
				last = p.Kernel.Now()
				issue()
			})
		}
		issue()
		p.RunFor(10 * Second)
		return last
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %v vs %v", a, b)
	}
	if a == 0 {
		t.Fatal("no work happened")
	}
}

func TestWithPoliciesSubset(t *testing.T) {
	p := NewPlatform(SystemIOrchestra, 3, WithPolicies(Policies{Flush: true}))
	if p.Manager == nil {
		t.Fatal("no manager")
	}
}

func TestWithHostConfig(t *testing.T) {
	p := NewPlatform(SystemBaseline, 4, WithHostConfig(HostConfig{Sockets: 1, CoresPerSocket: 3}))
	if p.Host.TotalCores() != 3 {
		t.Fatalf("TotalCores = %d", p.Host.TotalCores())
	}
}

package iorchestra

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation. Each iteration runs a reduced-scale instance of the
// corresponding experiment scenario and reports the domain metric the
// figure plots via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the whole evaluation's rows at smoke scale. Use
// `go run ./cmd/experiments -run all -full` for report-quality numbers.

import (
	"fmt"
	"testing"

	"iorchestra/internal/apps"
	"iorchestra/internal/blkio"
	"iorchestra/internal/cluster"
	"iorchestra/internal/core"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
	"iorchestra/internal/workload"
)

// benchSeed keeps benchmark runs deterministic.
const benchSeed = 42

// cassDisk mirrors the experiment harness's data-node disk profile.
func cassDisk() guest.DiskConfig {
	return guest.DiskConfig{
		Name: "xvda",
		CacheConfig: pagecache.Config{
			TotalPages:      (128 << 20) / pagecache.PageSize,
			DirtyRatio:      0.6,
			BackgroundRatio: 0.35,
		},
	}
}

// BenchmarkE0Motivation runs the Sec. 2 motivation test (multi-stream
// reads with congestion avoidance on) and reports the mean read latency.
func BenchmarkE0Motivation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPlatform(SystemBaseline, benchSeed)
		vm := p.NewVM(4, 4, guest.DiskConfig{
			Name:        "xvda",
			QueueConfig: blkio.Config{Limit: 68, MaxMerge: 128 << 10},
			MaxTransfer: 64 << 10,
		})
		ms := workload.NewMultiStream(p.Kernel, vm.G, vm.G.Disks()[0], 8, 1<<30, 1<<20, p.Rng.Fork("ms"))
		ms.Start()
		p.RunFor(2 * Second)
		b.ReportMetric(ms.Ops().Latency.Mean().Milliseconds(), "ms/read")
	}
}

// benchYCSBStore builds a two-node Cassandra store on platform p.
func benchYCSBStore(p *Platform) *apps.CassandraCluster {
	var nodes []*apps.CassandraNode
	for i := 0; i < 2; i++ {
		vm := p.NewVM(2, 4, cassDisk())
		nodes = append(nodes, apps.NewCassandraNode(p.Kernel, vm.G, vm.G.Disks()[0],
			apps.CassandraConfig{}, p.Rng.Fork(fmt.Sprintf("n%d", i))))
	}
	return apps.NewCassandraCluster(p.Kernel, nodes, p.Rng.Fork("cl"))
}

// benchFig4 runs a reduced Fig. 4 point (YCSB1+YCSB2 stores, no Olio)
// and reports mean and p99.9 for YCSB1.
func benchFig4(b *testing.B, sys System) {
	for i := 0; i < b.N; i++ {
		p := NewPlatform(sys, benchSeed)
		y1 := workload.NewYCSBOpenLoop(p.Kernel, workload.YCSB1(), benchYCSBStore(p), 2000, 0, p.Rng.Fork("y1"))
		y2 := workload.NewYCSBOpenLoop(p.Kernel, workload.YCSB2(), benchYCSBStore(p), 2000, 0, p.Rng.Fork("y2"))
		y1.Gen.Start()
		y2.Gen.Start()
		p.RunFor(5 * Second)
		b.ReportMetric(y1.Rec.Latency.Mean().Microseconds(), "us/y1-mean")
		b.ReportMetric(y1.Rec.Latency.Percentile(99.9).Microseconds(), "us/y1-p999")
		b.ReportMetric(y2.Rec.Latency.Mean().Microseconds(), "us/y2-mean")
	}
}

// BenchmarkFig4Baseline / SDC / DIF / IOrchestra regenerate Fig. 4's
// YCSB panels, one system per benchmark.
func BenchmarkFig4Baseline(b *testing.B)   { benchFig4(b, SystemBaseline) }
func BenchmarkFig4SDC(b *testing.B)        { benchFig4(b, SystemSDC) }
func BenchmarkFig4DIF(b *testing.B)        { benchFig4(b, SystemDIF) }
func BenchmarkFig4IOrchestra(b *testing.B) { benchFig4(b, SystemIOrchestra) }

// BenchmarkFig5CDF regenerates the Fig. 5 latency-distribution comparison
// at the highest intensity and reports the p99 gap.
func BenchmarkFig5CDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var p99 [2]float64
		for si, sys := range []System{SystemBaseline, SystemIOrchestra} {
			p := NewPlatform(sys, benchSeed)
			y1 := workload.NewYCSBOpenLoop(p.Kernel, workload.YCSB1(), benchYCSBStore(p), 3000, 0, p.Rng.Fork("y1"))
			y1.Gen.Start()
			p.RunFor(5 * Second)
			p99[si] = y1.Rec.Latency.Percentile(99).Microseconds()
		}
		b.ReportMetric(p99[0], "us/baseline-p99")
		b.ReportMetric(p99[1], "us/iorchestra-p99")
	}
}

// BenchmarkFig6Tiers regenerates the per-tier Olio comparison and reports
// mean end-to-end latency under both systems.
func BenchmarkFig6Tiers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range []System{SystemBaseline, SystemIOrchestra} {
			p := NewPlatform(sys, benchSeed)
			web, db, fs := p.NewVM(2, 4), p.NewVM(2, 4), p.NewVM(2, 4)
			olio := apps.NewOlio(p.Kernel, web.G, db.G, fs.G, apps.OlioConfig{}, p.Rng.Fork("olio"))
			gen := workload.NewClosedLoop(p.Kernel, 150, Second, olio.Request, p.Rng.Fork("faban"))
			gen.Start()
			p.RunFor(5 * Second)
			b.ReportMetric(olio.WebLatency().Mean().Milliseconds(), "ms/"+sys.String())
		}
	}
}

// BenchmarkFig7ScaleOut runs the 3-machine scale-out slice and reports
// the mpiBLAST chunk latency.
func BenchmarkFig7ScaleOut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		p := NewPlatform(SystemIOrchestra, benchSeed)
		_ = k
		var guests []*guest.Guest
		for j := 0; j < 3; j++ {
			vm := p.NewVM(2, 4)
			guests = append(guests, vm.G)
		}
		job := apps.NewBlastJob(p.Kernel, guests, 3<<30, true, p.Rng.Fork("blast"))
		job.Start()
		p.RunFor(5 * Second)
		b.ReportMetric(job.ChunkLatency().Mean().Milliseconds(), "ms/chunk")
	}
}

// BenchmarkFig8Flush runs the flush-policy sweep's densest point (many
// write-bursting VMs) for both systems and reports the throughput gain.
func BenchmarkFig8Flush(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var rate [2]float64
		for si, sys := range []System{SystemBaseline, SystemIOrchestra} {
			p := NewPlatform(sys, benchSeed, WithPolicies(Policies{Flush: true}))
			var gens []*workload.FS
			for j := 0; j < 8; j++ {
				rt := p.NewVM(1, 1, guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
					TotalPages: (1 << 30) / pagecache.PageSize, DirtyRatio: 0.2,
					BackgroundRatio: 0.1, WritebackWindow: 64}})
				fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
					Threads: 2, MeanFileSize: 1 << 20, Think: 6 * Millisecond,
					WriteFrac: 0.8, AppendFrac: 0.1, ReadFrac: 0.05,
					BurstOn: 1500 * Millisecond, BurstOff: 3500 * Millisecond,
				}, p.Rng.Fork(fmt.Sprintf("fs%d", j)))
				gens = append(gens, fs)
			}
			for _, g := range gens {
				g.Start()
			}
			p.RunFor(15 * Second)
			var total float64
			for _, g := range gens {
				total += g.WrittenBytes()
			}
			rate[si] = total / 15
		}
		b.ReportMetric(rate[0]/1e6, "MBps/baseline")
		b.ReportMetric(rate[1]/1e6, "MBps/iorchestra")
	}
}

// BenchmarkTable2Arrivals runs a short dynamic-arrival window (λ=16) and
// reports aggregate write throughput for the flush policy.
func BenchmarkTable2Arrivals(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPlatform(SystemIOrchestra, benchSeed, WithPolicies(Policies{Flush: true}))
		a := cluster.NewArrivals(p.Kernel, p.Host, cluster.ArrivalsConfig{
			Lambda: 16, Duration: 45 * Second,
			YCSBOps: 20000, FSBytes: 512 << 20, Cloud9Bursts: 500,
		}, cluster.VMHooks{OnCreate: func(rt *hypervisor.GuestRuntime) { p.Enable(rt) }},
			p.Rng.Fork("arrivals"))
		a.Start()
		p.RunFor(60 * Second)
		b.ReportMetric(a.WrittenBytes()/1e6/60, "MBps/written")
		b.ReportMetric(float64(a.Completed()), "vms-completed")
	}
}

// BenchmarkFig9Congestion runs the FS congestion point (6 VMs) for both
// systems and reports the normalized latency.
func BenchmarkFig9Congestion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var mean [2]float64
		for si, sys := range []System{SystemBaseline, SystemIOrchestra} {
			p := NewPlatform(sys, benchSeed, WithPolicies(Policies{Congestion: true}))
			var gens []*workload.FS
			for j := 0; j < 6; j++ {
				rt := p.NewVM(1, 1, guest.DiskConfig{
					Name:        "xvda",
					QueueConfig: blkio.Config{Limit: 48, DispatchWindow: 16},
					MaxTransfer: 64 << 10,
				})
				fs := workload.NewFS(p.Kernel, rt.G, rt.G.Disks()[0], workload.FSConfig{
					Threads: 4, MeanFileSize: 256 << 10, Think: 2 * Millisecond,
					BurstOn: Second, BurstOff: 2 * Second,
				}, p.Rng.Fork(fmt.Sprintf("f%d", j)))
				gens = append(gens, fs)
			}
			for _, g := range gens {
				g.Start()
			}
			p.RunFor(10 * Second)
			var sum, n float64
			for _, g := range gens {
				h := g.Ops().Latency
				sum += h.Mean().Seconds() * float64(h.Count())
				n += float64(h.Count())
			}
			mean[si] = sum / n
		}
		b.ReportMetric(mean[1]/mean[0], "normalized-latency")
	}
}

// BenchmarkFig10aCosched runs the big-VM co-scheduling point at 40 % I/O
// threads and reports throughput with redistribution on.
func BenchmarkFig10aCosched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPlatform(SystemIOrchestra, benchSeed,
			WithPolicies(Policies{Cosched: true}),
			WithHostConfig(HostConfig{Sockets: 2, CoresPerSocket: 6,
				IOCoreCostPerReq: 10 * Microsecond, IOCoreBps: 3.8e9}))
		rt := p.NewVM(10, 10, guest.DiskConfig{Name: "xvda", MaxTransfer: 256 << 10})
		ms := workload.NewMultiStream(p.Kernel, rt.G, rt.G.Disks()[0], 4, 256<<20, 1<<20, p.Rng.Fork("ms"))
		cb := workload.NewCPUBound(p.Kernel, rt.G, p.Rng.Fork("c9"))
		cb.Threads = 6
		ms.Start()
		cb.Start()
		p.RunFor(8 * Second)
		b.ReportMetric(float64(ms.Ops().Completed())/8, "MBps/streams")
	}
}

// BenchmarkFig10bCompleted and BenchmarkFig10cUtil reuse the arrival
// engine on the dedicated-core platform.
func BenchmarkFig10bCompleted(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPlatform(SystemIOrchestra, benchSeed)
		a := cluster.NewArrivals(p.Kernel, p.Host, cluster.ArrivalsConfig{
			Lambda: 12, Duration: 45 * Second,
			YCSBOps: 20000, FSBytes: 512 << 20, Cloud9Bursts: 500,
		}, cluster.VMHooks{OnCreate: func(rt *hypervisor.GuestRuntime) { p.Enable(rt) }},
			p.Rng.Fork("arrivals"))
		a.Start()
		p.RunFor(60 * Second)
		b.ReportMetric(float64(a.Completed()), "vms-completed")
	}
}

// BenchmarkFig10cUtil reports host CPU utilization under the same load.
func BenchmarkFig10cUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sys := range []System{SystemBaseline, SystemIOrchestra} {
			p := NewPlatform(sys, benchSeed)
			a := cluster.NewArrivals(p.Kernel, p.Host, cluster.ArrivalsConfig{
				Lambda: 12, Duration: 45 * Second,
				YCSBOps: 20000, FSBytes: 512 << 20, Cloud9Bursts: 500,
			}, cluster.VMHooks{OnCreate: func(rt *hypervisor.GuestRuntime) { p.Enable(rt) }},
				p.Rng.Fork("arrivals"))
			a.Start()
			p.RunFor(60 * Second)
			b.ReportMetric(p.Host.CPUUtilization(p.Kernel.Now())*100, "util%/"+sys.String())
		}
	}
}

// BenchmarkFig11Throughput reports aggregate I/O bytes under arrivals
// (the Fig. 11 numerator) on the dedicated-core platform.
func BenchmarkFig11Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := NewPlatform(SystemIOrchestra, benchSeed)
		a := cluster.NewArrivals(p.Kernel, p.Host, cluster.ArrivalsConfig{
			Lambda: 16, Duration: 45 * Second,
			YCSBOps: 20000, FSBytes: 512 << 20, Cloud9Bursts: 500,
		}, cluster.VMHooks{OnCreate: func(rt *hypervisor.GuestRuntime) { p.Enable(rt) }},
			p.Rng.Fork("arrivals"))
		a.Start()
		p.RunFor(60 * Second)
		b.ReportMetric(a.IOBytes()/1e6/60, "MBps/io")
	}
}

// BenchmarkFig12Bursty runs the bursty-write point (600 req/s, 100 ms
// bursts) for Baseline and IOrchestra and reports both p99.9 values.
func BenchmarkFig12Bursty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var p999 [2]float64
		for si, sys := range []System{SystemBaseline, SystemIOrchestra} {
			p := NewPlatform(sys, benchSeed, WithManagerConfig(core.ManagerConfig{
				MinFlushBytes: 24 << 20, FlushCooldown: Second}))
			run := workload.NewYCSBBursty(p.Kernel, workload.YCSB1(), benchYCSBStore(p),
				600, 100*Millisecond, 500*Millisecond, 0, p.Rng.Fork("gen"))
			run.Gen.Start()
			p.RunFor(10 * Second)
			p999[si] = run.Rec.Latency.Percentile(99.9).Microseconds()
		}
		b.ReportMetric(p999[0], "us/baseline-p999")
		b.ReportMetric(p999[1], "us/iorchestra-p999")
	}
}

// BenchmarkKernelThroughput measures raw simulator event throughput — the
// ablation guardrail for the event-calendar implementation.
func BenchmarkKernelThroughput(b *testing.B) {
	k := sim.NewKernel()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			k.After(sim.Microsecond, fn)
		}
	}
	b.ResetTimer()
	k.After(sim.Microsecond, fn)
	k.Run()
}

// BenchmarkStoreWatchDispatch measures the control-plane store's write +
// watch-notification path, the overhead the paper claims is low.
func BenchmarkStoreWatchDispatch(b *testing.B) {
	p := NewPlatform(SystemIOrchestra, benchSeed)
	vm := p.NewVM(1, 1)
	st := p.Host.Store()
	fired := 0
	st.Watch(0, store.Root, func(path, value string) { fired++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.Dom.WriteInt("bench/key", int64(i))
		p.Kernel.RunUntil(p.Kernel.Now() + Millisecond)
	}
	_ = fired
}

// Command iorchestra-clusterd runs the federation control plane against
// a real cluster store served by iorchestra-stored — the wall-clock
// counterpart of internal/federation's in-sim registry and placement
// (docs/CLUSTER.md is the normative reference for the key schema, the
// heartbeat/TTL semantics and the scoring formula; all four roles below
// share their implementation with the simulator through the
// federation package, so a decision made here matches the simulated one
// bit for bit).
//
// Roles:
//
//	join    register this host under /cluster/hypervisors/<id> and keep
//	        its entry fresh with periodic heartbeats (statics republished
//	        every beat, so an expired entry self-heals); removes the
//	        entry on SIGINT/SIGTERM (a graceful leave)
//	watch   stream membership transitions (join/beat/leave) to stdout
//	expire  enforce the heartbeat TTL: remove entries whose beats
//	        stalled — liveness enforcement is the expirer's job, exactly
//	        one per cluster
//	place   one-shot placement: score the registry's hosts for a guest
//	        request with the shared engine and print the decision
//
// Examples:
//
//	iorchestra-clusterd join -store tcp://127.0.0.1:7011 -id hostA -cores 12
//	iorchestra-clusterd watch -store tcp://127.0.0.1:7011
//	iorchestra-clusterd expire -store tcp://127.0.0.1:7011 -ttl 3500ms
//	iorchestra-clusterd place -store tcp://127.0.0.1:7011 \
//	    -guest vm042 -vcpus 4 -mode permissive -bind
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"iorchestra/internal/federation"
	"iorchestra/internal/gstate"
	"iorchestra/internal/netstore"
	"iorchestra/internal/store"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: iorchestra-clusterd <role> [flags]

roles:
  join      register and heartbeat one host (leave on SIGINT)
  watch     stream membership transitions to stdout
  expire    TTL-expire hosts whose heartbeats stalled
  place     one-shot scored placement for a guest request

run "iorchestra-clusterd <role> -h" for the role's flags
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "join":
		err = cmdJoin(os.Args[2:])
	case "watch":
		err = cmdWatch(os.Args[2:])
	case "expire":
		err = cmdExpire(os.Args[2:])
	case "place":
		err = cmdPlace(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "iorchestra-clusterd: unknown role %q\n\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iorchestra-clusterd:", err)
		os.Exit(1)
	}
}

// dial connects to the cluster store as Dom0 (the federation is a
// privileged management module, like the in-sim LocalView).
func dial(url, token string) (*netstore.Client, error) {
	if addr, ok := strings.CutPrefix(url, "tcp://"); ok {
		return netstore.Dial("tcp", addr, store.Dom0, token)
	}
	if path, ok := strings.CutPrefix(url, "unix://"); ok {
		return netstore.Dial("unix", path, store.Dom0, token)
	}
	return nil, fmt.Errorf("store endpoint %q: want tcp://host:port or unix:///path", url)
}

// storeFlags declares the flags every role shares.
func storeFlags(fs *flag.FlagSet) (url, token *string) {
	url = fs.String("store", "tcp://127.0.0.1:7011", "cluster store endpoint (an iorchestra-stored -listen URL)")
	token = fs.String("dom0-token", os.Getenv("IORCHESTRA_DOM0_TOKEN"),
		"Dom0 bind token (default $IORCHESTRA_DOM0_TOKEN)")
	return
}

// netView adapts a netstore connection to federation.View, so the same
// registry/placement/migration code runs whether the cluster store is
// an object or a socket away. The sync modes and pair layout match the
// wire protocol's by construction (both mirror netstore OpSync).
type netView struct{ c *netstore.Client }

var _ federation.View = netView{}

func (v netView) Read(path string) (string, error)   { return v.c.Read(path) }
func (v netView) Write(path, value string) error     { return v.c.Write(path, value) }
func (v netView) Remove(path string) error           { return v.c.Remove(path) }
func (v netView) List(path string) ([]string, error) { return v.c.List(path) }
func (v netView) Grant(path string, target store.DomID, perm store.Perm) error {
	return v.c.Grant(path, target, perm)
}
func (v netView) Watch(prefix string, fn func(path, value string)) (store.WatchID, error) {
	return v.c.Watch(prefix, fn)
}
func (v netView) Unwatch(id store.WatchID) { v.c.Unwatch(id) }
func (v netView) SyncSubtree(root string, since, known uint64) (federation.SyncPage, error) {
	res, err := v.c.SyncSubtree(root, since, known)
	if err != nil {
		return federation.SyncPage{}, err
	}
	page := federation.SyncPage{
		Mode:    federation.SyncMode(res.Mode),
		Version: res.Version,
		Hash:    res.Hash,
		Pairs:   make([]federation.SyncPair, 0, len(res.Pairs)),
	}
	for _, p := range res.Pairs {
		page.Pairs = append(page.Pairs, federation.SyncPair{Path: p.Path, Value: p.Value, Removed: p.Removed})
	}
	return page, nil
}

// cmdJoin registers the host and heartbeats until a signal, then leaves
// gracefully by removing its entry (so peers see a leave, not a TTL
// expiry).
// parseTierList maps a comma-separated -tiers value onto a zero-count
// census: key presence declares capability (docs/GSTATES.md §7), and a
// freshly joined host has admitted nobody. Unknown tier names are
// rejected rather than defaulted — a typo silently demoting a host to
// bronze-only would be a placement bug waiting to be found in an
// incident.
func parseTierList(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	counts := map[string]int{}
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		switch gstate.Tier(name) {
		case gstate.Gold, gstate.Silver, gstate.Bronze:
			counts[name] = 0
		default:
			return nil, fmt.Errorf("join: bad -tiers entry %q: want gold, silver or bronze", name)
		}
	}
	return counts, nil
}

func cmdJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	url, token := storeFlags(fs)
	id := fs.String("id", "", "hypervisor id (required)")
	class := fs.String("class", "", "domain class label (matched against a request's -class)")
	cores := fs.Int("cores", 0, "physical cores to publish (required)")
	interval := fs.Duration("interval", time.Second, "heartbeat interval")
	active := fs.Int("active-vcpus", 0, "active VCPUs to publish each beat")
	queue := fs.Int("queue-depth", 0, "queue depth to publish each beat")
	util := fs.Float64("util", 0, "device utilization fraction to publish each beat")
	p99 := fs.Float64("p99-ms", 0, "host-path p99 latency (ms) to publish each beat")
	tiers := fs.String("tiers", "", "comma-separated SLA tiers this host admits, e.g. gold,silver,bronze (empty = untiered host; a place -tier request needs the tier in this census)")
	fs.Parse(args)
	if *id == "" || *cores <= 0 {
		return fmt.Errorf("join: -id and -cores are required")
	}
	tierCounts, err := parseTierList(*tiers)
	if err != nil {
		return err
	}
	c, err := dial(*url, *token)
	if err != nil {
		return err
	}
	defer c.Close()
	v := netView{c}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	fmt.Fprintf(os.Stderr, "iorchestra-clusterd: joined as %s (%d cores, every %v)\n", *id, *cores, *interval)
	for beat := int64(1); ; beat++ {
		// Statics ride along with every beat: a wrongly expired entry
		// heals itself the moment the next beat lands.
		federation.PublishHostStatics(v, *id, *class, *cores)
		federation.PublishHostLoad(v, *id, federation.HostLoad{
			ActiveVCPUs: *active, QueueDepth: *queue, Util: *util, P99Ms: *p99,
		})
		if len(tierCounts) > 0 {
			federation.PublishTierCounts(v, *id, tierCounts)
		}
		federation.PublishHeartbeat(v, *id, beat)
		if err := c.Err(); err != nil {
			return fmt.Errorf("join: store connection lost: %w", err)
		}
		select {
		case s := <-sig:
			fmt.Fprintf(os.Stderr, "iorchestra-clusterd: %v, leaving\n", s)
			return v.Remove(store.HypervisorPath(*id))
		case <-tick.C:
		}
	}
}

// cmdWatch streams membership transitions: first-heard joins, beats,
// and entry removals (expiry or graceful leave).
func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	url, token := storeFlags(fs)
	beats := fs.Bool("beats", false, "print every heartbeat, not only transitions")
	fs.Parse(args)
	c, err := dial(*url, *token)
	if err != nil {
		return err
	}
	defer c.Close()

	root := store.HypervisorsPath()
	seen := map[string]bool{} // touched only on the client's dispatch goroutine
	for _, id := range registryHosts(netView{c}) {
		seen[id] = true
		fmt.Printf("%s member %s\n", time.Now().Format(time.RFC3339), id)
	}
	_, err = c.Watch(root, func(path, value string) {
		now := time.Now().Format(time.RFC3339)
		if id, ok := federation.BeatObserved(root, path); ok {
			if !seen[id] {
				seen[id] = true
				fmt.Printf("%s join %s\n", now, id)
			} else if *beats {
				fmt.Printf("%s beat %s (#%s)\n", now, id, value)
			}
			return
		}
		if id, ok := federation.EntryRemoved(root, path, value); ok && seen[id] {
			delete(seen, id)
			fmt.Printf("%s leave %s\n", now, id)
		}
	})
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}

// cmdExpire enforces the heartbeat TTL: beats are stamped on arrival,
// and a periodic sweep removes entries whose stamp aged out — the
// wall-clock twin of Federation.sweepTick. Entries present before this
// expirer started get a grace stamp, so a restart never mass-expires a
// healthy cluster.
func cmdExpire(args []string) error {
	fs := flag.NewFlagSet("expire", flag.ExitOnError)
	url, token := storeFlags(fs)
	ttl := fs.Duration("ttl", 3500*time.Millisecond, "heartbeat age past which a host is dead")
	sweep := fs.Duration("sweep", 0, "sweep cadence (default ttl/2)")
	fs.Parse(args)
	if *sweep <= 0 {
		*sweep = *ttl / 2
	}
	c, err := dial(*url, *token)
	if err != nil {
		return err
	}
	defer c.Close()
	v := netView{c}

	var mu sync.Mutex // beat stamps arrive on the dispatch goroutine; the sweep ticks on main
	lastBeat := map[string]time.Time{}
	for _, id := range registryHosts(v) {
		lastBeat[id] = time.Now()
	}
	root := store.HypervisorsPath()
	_, err = c.Watch(root, func(path, value string) {
		if id, ok := federation.BeatObserved(root, path); ok {
			mu.Lock()
			lastBeat[id] = time.Now()
			mu.Unlock()
		}
	})
	if err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(*sweep)
	defer tick.Stop()
	fmt.Fprintf(os.Stderr, "iorchestra-clusterd: expiring beats older than %v every %v\n", *ttl, *sweep)
	for {
		select {
		case <-sig:
			return nil
		case <-tick.C:
		}
		if err := c.Err(); err != nil {
			return fmt.Errorf("expire: store connection lost: %w", err)
		}
		for _, id := range registryHosts(v) {
			mu.Lock()
			at, heard := lastBeat[id]
			mu.Unlock()
			if !heard {
				// In the tree but never heard from: grace-stamp it and
				// let the TTL run from now.
				mu.Lock()
				lastBeat[id] = time.Now()
				mu.Unlock()
				continue
			}
			if age := time.Since(at); age > *ttl {
				mu.Lock()
				delete(lastBeat, id)
				mu.Unlock()
				if err := v.Remove(store.HypervisorPath(id)); err == nil {
					fmt.Printf("%s expire %s (age %v)\n", time.Now().Format(time.RFC3339), id, age.Round(time.Millisecond))
				}
			}
		}
	}
}

// placeDecision is the JSON document cmdPlace prints.
type placeDecision struct {
	Guest  string                 `json:"guest"`
	Host   string                 `json:"host,omitempty"`
	Mode   string                 `json:"mode"`
	Score  float64                `json:"score,omitempty"`
	Scores []federation.HostScore `json:"scores"`
}

// cmdPlace scores the current registry for one request with the shared
// pure engine and prints the decision. Listed hosts are taken as live —
// keeping dead entries out of the registry is the expirer's job, so
// liveness enforcement happens in exactly one place.
func cmdPlace(args []string) error {
	fs := flag.NewFlagSet("place", flag.ExitOnError)
	url, token := storeFlags(fs)
	guest := fs.String("guest", "", "guest uid (required)")
	vcpus := fs.Int("vcpus", 0, "VCPU ask (required)")
	class := fs.String("class", "", "required domain class (empty = any)")
	tier := fs.String("tier", "", "guest SLA tier: gold, silver or bronze (empty = untiered; hosts must publish the tier in their /tiers census)")
	mode := fs.String("mode", "enforce", "infeasibility handling: enforce or permissive")
	overcommit := fs.Float64("overcommit", 1.0, "capacity scale factor")
	wq := fs.Float64("w-queue", 0, "queue-depth weight (0 0 0 = defaults 0.4/0.4/0.2)")
	wu := fs.Float64("w-util", 0, "utilization weight")
	wl := fs.Float64("w-latency", 0, "p99-latency weight")
	bind := fs.Bool("bind", false, "on admission, record the guest placement in the cluster registry")
	fs.Parse(args)
	if *guest == "" || *vcpus <= 0 {
		return fmt.Errorf("place: -guest and -vcpus are required")
	}
	switch *tier {
	case "", "gold", "silver", "bronze":
	default:
		return fmt.Errorf("place: -tier %q: want gold, silver or bronze", *tier)
	}
	pol := federation.Policy{
		Overcommit:  *overcommit,
		QueueWeight: *wq, UtilWeight: *wu, LatencyWeight: *wl,
	}
	switch *mode {
	case "enforce":
	case "permissive":
		pol.Mode = federation.Permissive
	default:
		return fmt.Errorf("place: -mode %q: want enforce or permissive", *mode)
	}
	c, err := dial(*url, *token)
	if err != nil {
		return err
	}
	defer c.Close()
	v := netView{c}

	var hosts []federation.HostStats
	for _, id := range registryHosts(v) {
		hs := federation.ReadHostStats(v, id)
		hs.Live = true // presence in the registry is the expirer's liveness verdict
		hosts = append(hosts, hs)
	}
	scores, winner, decision := federation.ScoreHosts(pol, federation.Request{
		Guest: *guest, VCPUs: *vcpus, Class: *class, Tier: *tier,
	}, hosts)
	out := placeDecision{Guest: *guest, Mode: decision, Scores: scores}
	if winner >= 0 {
		out.Host, out.Score = scores[winner].ID, scores[winner].Score
		if *bind {
			if err := federation.RecordPlacement(v, *guest, out.Host, *vcpus); err != nil {
				return fmt.Errorf("place: bind: %w", err)
			}
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	if winner < 0 {
		os.Exit(1)
	}
	return nil
}

// registryHosts lists the registered hypervisor ids, sorted.
func registryHosts(v federation.View) []string {
	ids, err := v.List(store.HypervisorsPath())
	if err != nil {
		return nil
	}
	sort.Strings(ids)
	return ids
}

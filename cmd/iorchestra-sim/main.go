// Command iorchestra-sim runs a single configurable scenario: a
// population of VMs with one workload personality on one of the four
// systems, printing latency and throughput results plus the IOrchestra
// policy activity. It is the "drive the platform by hand" tool; use
// cmd/experiments to regenerate the paper's figures.
//
//	iorchestra-sim -system iorchestra -workload fs -vms 8 -seconds 30
//	iorchestra-sim -system baseline -workload ycsb1 -vms 2 -rate 2000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"iorchestra"
	"iorchestra/internal/apps"
	"iorchestra/internal/core"
	"iorchestra/internal/gstate"
	"iorchestra/internal/guest"
	"iorchestra/internal/metrics"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/trace"
	"iorchestra/internal/workload"
)

// formatCounts renders an injection-counter map as "kind=n" pairs in
// stable order.
func formatCounts(c map[string]uint64) string {
	if len(c) == 0 {
		return "none"
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, c[k]))
	}
	return strings.Join(parts, " ")
}

// parsePolicies maps a -policies name to the controller subset it
// enables, rejecting unknown names with the full menu (mirrors
// cmd/sim-bench).
func parsePolicies(s string) (core.Policies, error) {
	switch s {
	case "all":
		return core.All(), nil
	case "flush":
		return core.Policies{Flush: true}, nil
	case "congestion":
		return core.Policies{Congestion: true}, nil
	case "cosched":
		return core.Policies{Cosched: true}, nil
	case "gstate":
		return core.Policies{GState: true}, nil
	}
	return core.Policies{}, fmt.Errorf("bad -policies %q: want flush|congestion|cosched|gstate|all", s)
}

func main() {
	system := flag.String("system", "iorchestra", "baseline | sdc | dif | iorchestra")
	wl := flag.String("workload", "fs", "fs | burstyfs | ws | vs | multistream | ycsb1 | ycsb2 | blast | cloud9")
	vms := flag.Int("vms", 4, "number of VMs")
	vcpus := flag.Int("vcpus", 2, "VCPUs (and GB of memory) per VM")
	seconds := flag.Int("seconds", 30, "virtual seconds to simulate")
	rate := flag.Float64("rate", 2000, "request rate for ycsb workloads (req/s)")
	seed := flag.Uint64("seed", 42, "deterministic seed")
	traceOut := flag.String("trace", "", "write an NDJSON decision trace to this file (see cmd/iorchestra-trace)")
	faults := flag.String("faults", "", "fault-injection spec, e.g. uncoop=0.5,crash=0.25@2s+3s,stucksync=0.5 (see docs/FAULTS.md)")
	policies := flag.String("policies", "", "policy subset for -system iorchestra: flush | congestion | cosched | gstate | all (empty = the paper's three)")
	flag.Parse()

	var sys iorchestra.System
	switch strings.ToLower(*system) {
	case "baseline":
		sys = iorchestra.SystemBaseline
	case "sdc":
		sys = iorchestra.SystemSDC
	case "dif":
		sys = iorchestra.SystemDIF
	case "iorchestra":
		sys = iorchestra.SystemIOrchestra
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(1)
	}

	var popts []iorchestra.Option
	gstateOn := false
	if *policies != "" {
		pol, err := parsePolicies(*policies)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		gstateOn = pol.GState
		popts = append(popts, iorchestra.WithPolicies(pol))
	}
	if *traceOut != "" {
		popts = append(popts, iorchestra.WithTracing(0))
	}
	if *faults != "" {
		spec, err := iorchestra.ParseFaultSpec(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		popts = append(popts, iorchestra.WithFaults(spec))
	}
	p := iorchestra.NewPlatform(sys, *seed, popts...)
	dur := sim.Duration(*seconds) * iorchestra.Second

	type resultFn func() (*metrics.Histogram, float64) // latency, bytes
	var results []resultFn

	// Under -policies gstate each VM declares an SLA tier round-robin
	// (gold, silver, bronze, ...); NewTieredVM publishes the declaration
	// before the controllers attach, so admission control sees it.
	vmIndex := 0
	makeVM := func(disk guest.DiskConfig) *iorchestra.VM {
		i := vmIndex
		vmIndex++
		if gstateOn {
			tier := []gstate.Tier{gstate.Gold, gstate.Silver, gstate.Bronze}[i%3]
			return p.NewTieredVM(tier, gstate.SLA{}, *vcpus, *vcpus, disk)
		}
		return p.NewVM(*vcpus, *vcpus, disk)
	}

	newVM := func() *iorchestra.VM {
		return makeVM(guest.DiskConfig{
			Name: "xvda",
			CacheConfig: pagecache.Config{
				TotalPages: (1 << 30) / pagecache.PageSize,
			},
		})
	}

	// burstyfs is the Fig. 8-style flush-prone profile: buffered write
	// bursts against a small dirty budget, leaving idle windows where
	// Algorithm 1 can act. The scenario that exercises flush orders (and,
	// with -faults, the flush-deadline machinery — docs/FAULTS.md).
	newBurstyVM := func(i int) workload.Personality {
		vm := makeVM(guest.DiskConfig{
			Name: "xvda",
			CacheConfig: pagecache.Config{
				TotalPages:      (1 << 30) / pagecache.PageSize,
				DirtyRatio:      0.2,
				BackgroundRatio: 0.1,
				WritebackWindow: 64,
			},
		})
		return workload.NewFS(p.Kernel, vm.G, vm.G.Disks()[0], workload.FSConfig{
			Threads: *vcpus, MeanFileSize: 1 << 20, Think: 6 * sim.Millisecond,
			WriteFrac: 0.8, AppendFrac: 0.1, ReadFrac: 0.05,
			BurstOn: 1500 * sim.Millisecond, BurstOff: 3500 * sim.Millisecond,
		}, p.Rng.Fork(fmt.Sprintf("wl%d", i)))
	}

	switch strings.ToLower(*wl) {
	case "fs", "burstyfs", "ws", "vs", "multistream":
		for i := 0; i < *vms; i++ {
			var per workload.Personality
			if strings.ToLower(*wl) == "burstyfs" {
				per = newBurstyVM(i)
				per.Start()
				per2 := per
				results = append(results, func() (*metrics.Histogram, float64) {
					return per2.Ops().Latency, 0
				})
				continue
			}
			vm := newVM()
			rng := p.Rng.Fork(fmt.Sprintf("wl%d", i))
			switch strings.ToLower(*wl) {
			case "fs":
				per = workload.NewFS(p.Kernel, vm.G, vm.G.Disks()[0], workload.FSConfig{Threads: *vcpus}, rng)
			case "ws":
				per = workload.NewWS(p.Kernel, vm.G, vm.G.Disks()[0], workload.WSConfig{Threads: *vcpus}, rng)
			case "vs":
				per = workload.NewVS(p.Kernel, vm.G, vm.G.Disks()[0], workload.VSConfig{Readers: *vcpus}, rng)
			default:
				per = workload.NewMultiStream(p.Kernel, vm.G, vm.G.Disks()[0], *vcpus, 1<<30, 1<<20, rng)
			}
			per.Start()
			per2 := per
			results = append(results, func() (*metrics.Histogram, float64) {
				return per2.Ops().Latency, 0
			})
		}
	case "ycsb1", "ycsb2":
		cfg := workload.YCSB1()
		if strings.ToLower(*wl) == "ycsb2" {
			cfg = workload.YCSB2()
		}
		var nodes []*apps.CassandraNode
		for i := 0; i < *vms; i++ {
			vm := newVM()
			nodes = append(nodes, apps.NewCassandraNode(p.Kernel, vm.G, vm.G.Disks()[0],
				apps.CassandraConfig{}, p.Rng.Fork(fmt.Sprintf("node%d", i))))
		}
		cl := apps.NewCassandraCluster(p.Kernel, nodes, p.Rng.Fork("cl"))
		run := workload.NewYCSBOpenLoop(p.Kernel, cfg, cl, *rate, 0, p.Rng.Fork("gen"))
		run.Gen.Start()
		results = append(results, func() (*metrics.Histogram, float64) {
			return run.Rec.Latency, 0
		})
	case "blast":
		var gs []*guest.Guest
		for i := 0; i < *vms; i++ {
			gs = append(gs, newVM().G)
		}
		job := apps.NewBlastJob(p.Kernel, gs, int64(*vms)*2<<30, true, p.Rng.Fork("blast"))
		job.Start()
		results = append(results, func() (*metrics.Histogram, float64) {
			return job.ChunkLatency(), 0
		})
	case "cloud9":
		for i := 0; i < *vms; i++ {
			vm := newVM()
			cb := workload.NewCPUBound(p.Kernel, vm.G, p.Rng.Fork(fmt.Sprintf("c9-%d", i)))
			cb.Start()
			cb2 := cb
			results = append(results, func() (*metrics.Histogram, float64) {
				return cb2.Ops().Latency, 0
			})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(1)
	}

	fmt.Printf("system=%v workload=%s vms=%d vcpus=%d duration=%ds seed=%d\n",
		sys, *wl, *vms, *vcpus, *seconds, *seed)
	p.RunFor(dur)

	merged := metrics.NewHistogram()
	for _, fn := range results {
		h, _ := fn()
		merged.Merge(h)
	}
	fmt.Printf("ops=%d\n", merged.Count())
	fmt.Printf("latency: mean=%v p50=%v p99=%v p99.9=%v max=%v\n",
		merged.Mean(), merged.Percentile(50), merged.Percentile(99),
		merged.Percentile(99.9), merged.Max())
	dev := p.Host.Device()
	fmt.Printf("device: bw=%.1f MB/s busy=%.0f%%\n",
		dev.BandwidthBps(p.Kernel.Now())/1e6, dev.UtilFraction(p.Kernel.Now())*100)
	fmt.Printf("host CPU utilization: %.0f%%\n", p.Host.CPUUtilization(p.Kernel.Now())*100)
	if p.Manager != nil {
		c := p.Manager.Counters()
		fmt.Printf("iorchestra: %d flush notices, %d vetoes, %d confirms, %d relieves, %d cosched runs\n",
			c.FlushNotices, c.Vetoes, c.Confirms, c.Relieves, c.CoschedRuns)
		fmt.Printf("degradation: %d heartbeat misses, %d flush timeouts, %d release retries, %d release timeouts, %d hold timeouts, %d fallbacks, %d restores\n",
			c.HeartbeatMisses, c.FlushTimeouts, c.ReleaseRetries, c.ReleaseTimeouts,
			c.HoldTimeouts, c.Fallbacks, c.Restores)
		if gstateOn {
			fmt.Printf("gstate: %d demotions, %d promotions, %d sla violations, %d admissions, %d deferrals\n",
				c.GStateDemotes, c.GStatePromotes, c.SLAViolations, c.GStateAdmits, c.GStateDefers)
		}
	}
	r, w, n := p.Host.Store().Stats()
	fmt.Printf("system store: %d reads, %d writes, %d notifications\n", r, w, n)
	if p.Faults != nil {
		fmt.Printf("faults injected: %d total (%s)\n", p.Faults.Total(), formatCounts(p.Faults.Counts()))
		dw, dn, dl := p.Host.Store().FaultStats()
		fmt.Printf("store faults: %d dropped writes, %d dropped notifies, %d delayed notifies\n", dw, dn, dl)
	}

	if *traceOut != "" && p.Trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := p.Trace.WriteNDJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events recorded (%d retained, %d evicted) -> %s\n",
			p.Trace.Recorded(), len(p.Trace.Events()), p.Trace.Dropped(), *traceOut)
		fmt.Print(trace.Summarize(p.Trace.Events()).Format())
	}
}

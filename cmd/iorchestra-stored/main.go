// Command iorchestra-stored serves the IOrchestra system store over the
// netstore wire protocol, so guests, management modules and tools on
// other machines (or processes) share one coordination tree — the
// networked stand-in for the XenStore bus of the paper's testbed.
//
// Endpoints are URLs: tcp://host:port or unix:///path. -listen may
// repeat; -trace-listen serves the live NDJSON decision stream that
// `iorchestra-trace tcp://...` tails. Store-level faults from the PR 2
// grammar (stalewrite, watchdrop, watchdelay) can be injected for
// resilience drills.
//
//	iorchestra-stored -listen tcp://127.0.0.1:7011
//	iorchestra-stored -listen unix:///run/iorchestra/store.sock \
//	    -trace-listen tcp://127.0.0.1:7012 \
//	    -faults 'watchdrop=0.01' -dom0-token secret
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"iorchestra/internal/netstore"
)

// endpoints collects repeatable -listen style URL flags.
type endpoints []string

func (e *endpoints) String() string { return strings.Join(*e, ",") }
func (e *endpoints) Set(v string) error {
	*e = append(*e, v)
	return nil
}

// listen opens one tcp:// or unix:// endpoint URL; stale unix socket
// files from a previous run are removed before binding.
func listen(url string) (net.Listener, error) {
	if addr, ok := strings.CutPrefix(url, "tcp://"); ok {
		return net.Listen("tcp", addr)
	}
	if path, ok := strings.CutPrefix(url, "unix://"); ok {
		if _, err := os.Stat(path); err == nil {
			if c, derr := net.DialTimeout("unix", path, 200*time.Millisecond); derr == nil {
				c.Close()
				return nil, fmt.Errorf("unix://%s: already serving", path)
			}
			os.Remove(path)
		}
		return net.Listen("unix", path)
	}
	return nil, fmt.Errorf("endpoint %q: want tcp://host:port or unix:///path", url)
}

func main() {
	var listens, traceListens endpoints
	flag.Var(&listens, "listen", "store endpoint URL (tcp://host:port or unix:///path); repeatable")
	flag.Var(&traceListens, "trace-listen", "live NDJSON trace endpoint URL; repeatable")
	token := flag.String("dom0-token", os.Getenv("IORCHESTRA_DOM0_TOKEN"),
		"token required to bind a connection to Dom0 (default $IORCHESTRA_DOM0_TOKEN; empty = open)")
	faults := flag.String("faults", "", "fault spec applied to the store (e.g. 'watchdrop=0.05,watchdelay=10ms:0.2')")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the fault injector's deterministic stream")
	notifyQueue := flag.Int("notify-queue", 1024, "per-connection watch-event queue bound")
	writeTimeout := flag.Duration("write-timeout", 2*time.Second, "slow-client eviction window")
	maxTxns := flag.Int("max-txns", 64, "open transactions allowed per connection")
	shards := flag.Int("shards", 1, "store-loop shards (domain subtrees are routed deterministically)")
	maxProto := flag.Int("max-proto", int(netstore.ProtocolVersion),
		"highest protocol version to negotiate (lower to emulate an old server)")
	flag.Parse()
	if *maxProto < int(netstore.ProtocolV1) || *maxProto > int(netstore.ProtocolVersion) {
		fmt.Fprintf(os.Stderr, "iorchestra-stored: -max-proto %d out of range [%d, %d]\n",
			*maxProto, netstore.ProtocolV1, netstore.ProtocolVersion)
		os.Exit(1)
	}
	if len(listens) == 0 {
		listens = endpoints{"tcp://127.0.0.1:7011"}
	}

	srv := netstore.NewServer(netstore.Options{
		NotifyQueue:  *notifyQueue,
		WriteTimeout: *writeTimeout,
		Dom0Token:    *token,
		MaxTxns:      *maxTxns,
		Shards:       *shards,
		MaxProtocol:  uint8(*maxProto),
		Faults:       *faults,
		FaultSeed:    *faultSeed,
	})

	errs := make(chan error, len(listens)+len(traceListens))
	for _, url := range listens {
		l, err := listen(url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iorchestra-stored:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "iorchestra-stored: serving store on %s\n", url)
		go func() { errs <- srv.Serve(l) }()
	}
	for _, url := range traceListens {
		l, err := listen(url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "iorchestra-stored:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "iorchestra-stored: streaming trace on %s\n", url)
		go func() { errs <- srv.ServeTrace(l) }()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "iorchestra-stored: %v, draining\n", s)
	case err := <-errs:
		if err != nil {
			fmt.Fprintln(os.Stderr, "iorchestra-stored:", err)
		}
	}
	ctr := srv.Counters()
	srv.Close()
	fmt.Fprintf(os.Stderr,
		"iorchestra-stored: served %d conns (%d evicted), %d events (%d coalesced), %d writes\n",
		ctr.Accepted, ctr.Evicted, ctr.Events, ctr.Coalesced, ctr.StoreWrites)
}

// Command experiments regenerates the paper's tables and figures. With no
// flags it lists available experiments; -run executes one (or "all").
//
//	experiments -run E0            # Sec. 2 motivation test, quick scale
//	experiments -run fig8 -full    # report-quality durations
//	experiments -run all -seed 7
//	experiments -run fig8 -trace traces/   # per-point NDJSON decision traces
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"iorchestra/internal/experiments"
)

func main() {
	run := flag.String("run", "", "experiment id to run, or 'all'")
	full := flag.Bool("full", false, "report-quality durations (slower)")
	seed := flag.Uint64("seed", 42, "experiment seed")
	traceDir := flag.String("trace", "", "write per-point NDJSON decision traces and metrics summaries into this directory (see cmd/iorchestra-trace)")
	flag.Parse()

	scale := experiments.Quick
	if *full {
		scale = experiments.Full
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		experiments.SetTraceDir(*traceDir)
	}

	if *run == "" {
		fmt.Println("Available experiments (use -run <id> or -run all):")
		for _, r := range experiments.Runners() {
			fmt.Printf("  %-8s %s\n", r.ID, r.Describe)
		}
		return
	}

	var selected []experiments.Runner
	if *run == "all" {
		selected = experiments.Runners()
	} else if r := experiments.Lookup(*run); r != nil {
		selected = []experiments.Runner{*r}
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(1)
	}

	for _, r := range selected {
		// Elapsed-time reporting goes through the injectable clock so this
		// binary stays clean under the determinism vet pass: nothing here
		// may read the wall clock directly.
		sw := experiments.StartStopwatch()
		fmt.Printf("--- %s (%s scale, seed %d): %s\n", r.ID, scale, *seed, r.Describe)
		for _, t := range r.Run(scale, *seed) {
			fmt.Println(t.Format())
		}
		fmt.Printf("    [%s elapsed]\n\n", sw.Elapsed().Round(time.Millisecond))
	}
}

package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The e2e tests build the real binary and run it against the tiny
// module under testdata/vetfixture — a package with deliberate
// violations next to a clean one — asserting exit statuses, diagnostic
// text, and the -scope/-run selection behavior.

var toolPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "iorchestra-vet")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	toolPath = filepath.Join(dir, "iorchestra-vet")
	if out, err := exec.Command("go", "build", "-o", toolPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building iorchestra-vet: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// runTool runs the built binary with the fixture module as its working
// directory and returns stdout, stderr, and the exit status.
func runTool(t *testing.T, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(toolPath, args...)
	cmd.Dir = filepath.Join("testdata", "vetfixture")
	var so, se strings.Builder
	cmd.Stdout, cmd.Stderr = &so, &se
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running iorchestra-vet %v: %v", args, err)
	}
	return so.String(), se.String(), exit
}

func TestDirtyPackageAllScope(t *testing.T) {
	stdout, stderr, exit := runTool(t, "-scope=all", "./dirty")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	for _, needle := range []string{
		"dirty/dirty.go:",
		"[storekeys]",
		"raw store path literal",
		"[determinism]",
		"time.Now reads the wall clock",
	} {
		if !strings.Contains(stdout, needle) {
			t.Errorf("stdout missing %q:\n%s", needle, stdout)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr = %q, want finding count 2", stderr)
	}
}

// Under the default auto scope the fixture module is outside the
// determinism pass's package list, so only storekeys (which applies
// everywhere) fires.
func TestDirtyPackageAutoScope(t *testing.T) {
	stdout, stderr, exit := runTool(t, "./dirty")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	if !strings.Contains(stdout, "[storekeys]") {
		t.Errorf("stdout missing storekeys finding:\n%s", stdout)
	}
	if strings.Contains(stdout, "[determinism]") {
		t.Errorf("determinism fired outside its scope:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr = %q, want finding count 1", stderr)
	}
}

func TestRunSelectsPasses(t *testing.T) {
	stdout, _, exit := runTool(t, "-scope=all", "-run", "determinism", "./dirty")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", exit, stdout)
	}
	if !strings.Contains(stdout, "[determinism]") || strings.Contains(stdout, "[storekeys]") {
		t.Errorf("-run determinism should report only determinism findings:\n%s", stdout)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	stdout, stderr, exit := runTool(t, "-scope=all", "./clean")
	if exit != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	if stdout != "" || stderr != "" {
		t.Errorf("clean run should be silent, got stdout %q stderr %q", stdout, stderr)
	}
}

func TestUnknownPassExitsTwo(t *testing.T) {
	_, stderr, exit := runTool(t, "-run", "nosuchpass", "./clean")
	if exit != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", exit, stderr)
	}
	if !strings.Contains(stderr, "unknown pass") {
		t.Errorf("stderr = %q, want unknown-pass error", stderr)
	}
}

func TestListDescribesSuite(t *testing.T) {
	stdout, _, exit := runTool(t, "-list")
	if exit != 0 {
		t.Fatalf("exit = %d, want 0", exit)
	}
	for _, name := range []string{"determinism", "storekeys", "watchsafety", "monitoronly", "tracecounter", "nodeprecated"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing pass %q:\n%s", name, stdout)
		}
	}
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The e2e tests build the real binary and run it against the tiny
// module under testdata/vetfixture — a package with deliberate
// violations next to a clean one — asserting exit statuses, diagnostic
// text, and the -scope/-run selection behavior.

var toolPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "iorchestra-vet")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	toolPath = filepath.Join(dir, "iorchestra-vet")
	if out, err := exec.Command("go", "build", "-o", toolPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building iorchestra-vet: %v\n%s", err, out)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// runTool runs the built binary with the fixture module as its working
// directory and returns stdout, stderr, and the exit status.
func runTool(t *testing.T, args ...string) (stdout, stderr string, exit int) {
	t.Helper()
	cmd := exec.Command(toolPath, args...)
	cmd.Dir = filepath.Join("testdata", "vetfixture")
	var so, se strings.Builder
	cmd.Stdout, cmd.Stderr = &so, &se
	err := cmd.Run()
	if ee, ok := err.(*exec.ExitError); ok {
		exit = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running iorchestra-vet %v: %v", args, err)
	}
	return so.String(), se.String(), exit
}

func TestDirtyPackageAllScope(t *testing.T) {
	stdout, stderr, exit := runTool(t, "-scope=all", "./dirty")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	for _, needle := range []string{
		"dirty/dirty.go:",
		"[storekeys]",
		"raw store path literal",
		"[determinism]",
		"time.Now reads the wall clock",
	} {
		if !strings.Contains(stdout, needle) {
			t.Errorf("stdout missing %q:\n%s", needle, stdout)
		}
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr = %q, want finding count 2", stderr)
	}
}

// Under the default auto scope the fixture module is outside the
// determinism pass's package list, so only storekeys (which applies
// everywhere) fires.
func TestDirtyPackageAutoScope(t *testing.T) {
	stdout, stderr, exit := runTool(t, "./dirty")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	if !strings.Contains(stdout, "[storekeys]") {
		t.Errorf("stdout missing storekeys finding:\n%s", stdout)
	}
	if strings.Contains(stdout, "[determinism]") {
		t.Errorf("determinism fired outside its scope:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr = %q, want finding count 1", stderr)
	}
}

func TestRunSelectsPasses(t *testing.T) {
	stdout, _, exit := runTool(t, "-scope=all", "-run", "determinism", "./dirty")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", exit, stdout)
	}
	if !strings.Contains(stdout, "[determinism]") || strings.Contains(stdout, "[storekeys]") {
		t.Errorf("-run determinism should report only determinism findings:\n%s", stdout)
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	stdout, stderr, exit := runTool(t, "-scope=all", "./clean")
	if exit != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	if stdout != "" || stderr != "" {
		t.Errorf("clean run should be silent, got stdout %q stderr %q", stdout, stderr)
	}
}

func TestUnknownPassExitsTwo(t *testing.T) {
	_, stderr, exit := runTool(t, "-run", "nosuchpass", "./clean")
	if exit != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", exit, stderr)
	}
	if !strings.Contains(stderr, "unknown pass") {
		t.Errorf("stderr = %q, want unknown-pass error", stderr)
	}
}

func TestListDescribesSuite(t *testing.T) {
	stdout, _, exit := runTool(t, "-list")
	if exit != 0 {
		t.Fatalf("exit = %d, want 0", exit)
	}
	for _, name := range []string{
		"determinism", "storekeys", "watchsafety", "monitoronly", "tracecounter",
		"nodeprecated", "shardsafety", "epochsafety", "hotpathalloc", "boundedretry",
	} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list output missing pass %q:\n%s", name, stdout)
		}
	}
}

// findingsReport mirrors the -json findings envelope; the field set is
// the schema contract CI's problem matcher depends on.
type findingsReport struct {
	Version  int `json:"version"`
	Findings []struct {
		Pass    string `json:"pass"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Message string `json:"message"`
	} `json:"findings"`
}

// auditReport mirrors the -audit -json envelope.
type auditReport struct {
	Version    int `json:"version"`
	Directives []struct {
		File          string   `json:"file"`
		Line          int      `json:"line"`
		Passes        []string `json:"passes"`
		Justification string   `json:"justification"`
		Suppressed    int      `json:"suppressed"`
		Stale         bool     `json:"stale"`
	} `json:"directives"`
	Unjustified []struct {
		Pass string `json:"pass"`
		File string `json:"file"`
	} `json:"unjustified"`
}

func TestJSONFindings(t *testing.T) {
	stdout, stderr, exit := runTool(t, "-scope=all", "-json", "./dirty")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	var rep findingsReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout)
	}
	if rep.Version != 1 {
		t.Errorf("version = %d, want 1", rep.Version)
	}
	if len(rep.Findings) != 2 {
		t.Fatalf("findings = %d, want 2:\n%s", len(rep.Findings), stdout)
	}
	passes := map[string]bool{}
	for _, f := range rep.Findings {
		passes[f.Pass] = true
		if f.File != filepath.Join("dirty", "dirty.go") {
			t.Errorf("finding file = %q, want relative dirty/dirty.go", f.File)
		}
		if f.Line == 0 || f.Col == 0 || f.Message == "" {
			t.Errorf("finding missing position or message: %+v", f)
		}
	}
	if !passes["storekeys"] || !passes["determinism"] {
		t.Errorf("findings should cover storekeys and determinism, got %v", passes)
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr = %q, want finding count on stderr (stdout stays pure JSON)", stderr)
	}
}

func TestJSONCleanEmitsEmptyArray(t *testing.T) {
	stdout, _, exit := runTool(t, "-scope=all", "-json", "./clean")
	if exit != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s", exit, stdout)
	}
	var rep findingsReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout)
	}
	if rep.Findings == nil || len(rep.Findings) != 0 {
		t.Errorf("clean run must emit \"findings\": [] (not null), got:\n%s", stdout)
	}
}

func TestAuditReportsLedger(t *testing.T) {
	stdout, stderr, exit := runTool(t, "-scope=all", "-audit", "./allowed")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1 (stale directive present)\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	for _, needle := range []string{
		"allow [storekeys]",
		"suppressed 1 finding(s)",
		"allow [determinism]",
		"STALE: suppressed nothing this run",
	} {
		if !strings.Contains(stdout, needle) {
			t.Errorf("audit output missing %q:\n%s", needle, stdout)
		}
	}
	if !strings.Contains(stderr, "2 directive(s), 1 stale, 0 unjustified") {
		t.Errorf("stderr = %q, want ledger summary", stderr)
	}
}

func TestAuditJSON(t *testing.T) {
	stdout, _, exit := runTool(t, "-scope=all", "-audit", "-json", "./allowed")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", exit, stdout)
	}
	var rep auditReport
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("stdout is not valid JSON: %v\n%s", err, stdout)
	}
	if rep.Version != 1 || len(rep.Directives) != 2 || len(rep.Unjustified) != 0 {
		t.Fatalf("want version 1, 2 directives, 0 unjustified:\n%s", stdout)
	}
	byPass := map[string]struct {
		suppressed int
		stale      bool
	}{}
	for _, d := range rep.Directives {
		if len(d.Passes) != 1 || d.Justification == "" {
			t.Errorf("directive missing passes or justification: %+v", d)
			continue
		}
		byPass[d.Passes[0]] = struct {
			suppressed int
			stale      bool
		}{d.Suppressed, d.Stale}
	}
	if got := byPass["storekeys"]; got.suppressed != 1 || got.stale {
		t.Errorf("storekeys directive: %+v, want suppressed=1 stale=false", got)
	}
	if got := byPass["determinism"]; got.suppressed != 0 || !got.stale {
		t.Errorf("determinism directive: %+v, want suppressed=0 stale=true", got)
	}
}

// A clean audit (no directives at all) exits zero.
func TestAuditCleanExitsZero(t *testing.T) {
	stdout, stderr, exit := runTool(t, "-scope=all", "-audit", "./clean")
	if exit != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", exit, stdout, stderr)
	}
	if !strings.Contains(stderr, "0 directive(s), 0 stale, 0 unjustified") {
		t.Errorf("stderr = %q, want empty-ledger summary", stderr)
	}
}

// Usage errors keep exit code 2 in every output mode.
func TestUnknownPassExitsTwoUnderJSON(t *testing.T) {
	_, stderr, exit := runTool(t, "-json", "-run", "nosuchpass", "./clean")
	if exit != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", exit, stderr)
	}
	if !strings.Contains(stderr, "unknown pass") {
		t.Errorf("stderr = %q, want unknown-pass error", stderr)
	}
}

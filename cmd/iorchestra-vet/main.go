// Command iorchestra-vet runs the project's custom static-analysis suite
// (internal/analysis) over package patterns, printing one line per
// finding and exiting non-zero when the tree violates an invariant.
//
//	iorchestra-vet ./...                 # the make lint entry point
//	iorchestra-vet -list                 # describe every pass
//	iorchestra-vet -run determinism ./internal/core
//	iorchestra-vet -scope=all dir/...    # ignore per-pass package scoping
//
// The tool is a standalone multichecker: it parses and type-checks the
// target packages itself (standard library only, no go/packages), so it
// needs no network and no toolchain plumbing beyond `go run`. Findings
// are suppressed only by an escape hatch that names the pass and carries
// a justification:
//
//	//lint:allow determinism -- progress timer, never feeds the sim
//
// docs/LINTING.md documents every rule and the escape-hatch policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"iorchestra/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the suite's passes and exit")
	run := flag.String("run", "", "comma-separated pass names to run (default: all)")
	tests := flag.Bool("tests", true, "include _test.go files")
	scope := flag.String("scope", "auto", "package scoping: auto (per-pass AppliesTo) or all")
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Suite()
	if *run != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*run, ",") {
			a := analysis.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "iorchestra-vet: unknown pass %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorchestra-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers, *scope == "all")
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorchestra-vet: %v\n", err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "iorchestra-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// Command iorchestra-vet runs the project's custom static-analysis suite
// (internal/analysis) over package patterns, printing one line per
// finding and exiting non-zero when the tree violates an invariant.
//
//	iorchestra-vet ./...                 # the make lint entry point
//	iorchestra-vet -list                 # describe every pass
//	iorchestra-vet -run determinism ./internal/core
//	iorchestra-vet -scope=all dir/...    # ignore per-pass package scoping
//	iorchestra-vet -json ./...           # machine-readable findings (CI)
//	iorchestra-vet -audit ./...          # ledger of //lint:allow directives
//
// The tool is a standalone multichecker: it parses and type-checks the
// target packages itself (standard library only, no go/packages), so it
// needs no network and no toolchain plumbing beyond `go run`. Exit
// codes: 0 clean, 1 findings (or, under -audit, stale/unjustified
// directives), 2 usage or load errors. Findings are suppressed only by
// an escape hatch that names the pass and carries a justification:
//
//	//lint:allow determinism -- progress timer, never feeds the sim
//
// -audit reports every such directive with its justification and how
// many findings it suppressed in the run; a directive that suppressed
// nothing is stale and fails the audit. -json wraps either report in a
// versioned, schema-stable envelope (docs/LINTING.md documents both
// schemas, every rule and the escape-hatch policy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"iorchestra/internal/analysis"
)

// jsonFinding is one diagnostic in the -json envelope. The field set is
// schema-stable: CI's problem matcher and any downstream tooling key on
// it, so fields are only ever added, never renamed or removed.
type jsonFinding struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// jsonDirective is one //lint:allow directive in the -audit -json
// envelope, with its suppression accounting.
type jsonDirective struct {
	File          string   `json:"file"`
	Line          int      `json:"line"`
	Passes        []string `json:"passes"`
	Justification string   `json:"justification"`
	Suppressed    int      `json:"suppressed"`
	Stale         bool     `json:"stale"`
}

func main() {
	list := flag.Bool("list", false, "list the suite's passes and exit")
	run := flag.String("run", "", "comma-separated pass names to run (default: all)")
	tests := flag.Bool("tests", true, "include _test.go files")
	scope := flag.String("scope", "auto", "package scoping: auto (per-pass AppliesTo) or all")
	jsonOut := flag.Bool("json", false, "emit a versioned JSON report instead of text")
	audit := flag.Bool("audit", false, "report every //lint:allow directive; stale or unjustified ones fail")
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-13s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.Suite()
	if *run != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*run, ",") {
			a := analysis.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(os.Stderr, "iorchestra-vet: unknown pass %q (try -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{Tests: *tests}, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorchestra-vet: %v\n", err)
		os.Exit(2)
	}
	diags, allows, err := analysis.RunAnalyzersWithAllows(pkgs, analyzers, *scope == "all")
	if err != nil {
		fmt.Fprintf(os.Stderr, "iorchestra-vet: %v\n", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd != "" {
			if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
				return r
			}
		}
		return name
	}

	if *audit {
		os.Exit(runAudit(diags, allows, *jsonOut, rel))
	}
	if *jsonOut {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				Pass:    d.Analyzer,
				File:    rel(d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Message: d.Message,
			})
		}
		emitJSON(struct {
			Version  int           `json:"version"`
			Findings []jsonFinding `json:"findings"`
		}{Version: 1, Findings: findings})
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "iorchestra-vet: %d finding(s)\n", len(diags))
			os.Exit(1)
		}
		return
	}

	for _, d := range diags {
		d.Pos.Filename = rel(d.Pos.Filename)
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "iorchestra-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// runAudit reports the //lint:allow ledger. Unjustified directives
// surface as lintallow findings from the framework; justified ones that
// suppressed nothing this run are stale. Either fails the audit.
func runAudit(diags []analysis.Diagnostic, allows []*analysis.AllowDirective, jsonOut bool, rel func(string) string) int {
	var unjustified []analysis.Diagnostic
	for _, d := range diags {
		if d.Analyzer == "lintallow" {
			unjustified = append(unjustified, d)
		}
	}
	stale := 0
	for _, a := range allows {
		if a.Suppressed == 0 {
			stale++
		}
	}

	if jsonOut {
		directives := make([]jsonDirective, 0, len(allows))
		for _, a := range allows {
			directives = append(directives, jsonDirective{
				File:          rel(a.Pos.Filename),
				Line:          a.Pos.Line,
				Passes:        a.Passes,
				Justification: a.Justification,
				Suppressed:    a.Suppressed,
				Stale:         a.Suppressed == 0,
			})
		}
		unj := make([]jsonFinding, 0, len(unjustified))
		for _, d := range unjustified {
			unj = append(unj, jsonFinding{
				Pass:    d.Analyzer,
				File:    rel(d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Message: d.Message,
			})
		}
		emitJSON(struct {
			Version     int             `json:"version"`
			Directives  []jsonDirective `json:"directives"`
			Unjustified []jsonFinding   `json:"unjustified"`
		}{Version: 1, Directives: directives, Unjustified: unj})
	} else {
		for _, a := range allows {
			status := fmt.Sprintf("suppressed %d finding(s)", a.Suppressed)
			if a.Suppressed == 0 {
				status = "STALE: suppressed nothing this run — delete or re-justify"
			}
			fmt.Printf("%s:%d: allow [%s] -- %q (%s)\n",
				rel(a.Pos.Filename), a.Pos.Line, strings.Join(a.Passes, ","), a.Justification, status)
		}
		for _, d := range unjustified {
			fmt.Printf("%s:%d: unjustified directive: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}

	fmt.Fprintf(os.Stderr, "iorchestra-vet: %d directive(s), %d stale, %d unjustified\n",
		len(allows), stale, len(unjustified))
	if stale > 0 || len(unjustified) > 0 {
		return 1
	}
	return 0
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(os.Stderr, "iorchestra-vet: encoding report: %v\n", err)
		os.Exit(2)
	}
}

// Package clean gives iorchestra-vet nothing to report.
package clean

// Answer is trivially deterministic.
func Answer() int { return 42 }

// Package dirty deliberately violates iorchestra-vet rules; the e2e
// test asserts the tool reports each one with the right pass.
package dirty

import "time"

// Path is a raw store key literal (storekeys fires in any module).
var Path = "/local/domain/9/oops"

// Stamp reads the wall clock (determinism fires under -scope=all; this
// module is outside the pass's auto scope).
func Stamp() int64 { return time.Now().UnixNano() }

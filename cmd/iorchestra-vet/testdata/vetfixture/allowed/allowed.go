// Package allowed exercises the -audit ledger: one justified directive
// that really suppresses a finding, and one stale directive excusing a
// violation that no longer exists.
package allowed

// Raw would trip storekeys, but the directive on its line absorbs the
// finding with a justification -audit can report.
var Raw = "/local/domain/7/fixture" //lint:allow storekeys -- e2e fixture: exercises a justified, suppressing directive

// The determinism violation this excused was removed; the directive
// stayed behind, so -audit must flag it as stale.
//
//lint:allow determinism -- e2e fixture: stale on purpose, suppresses nothing
func Quiet() int { return 7 }

module vetfixture

go 1.22

// Command sim-bench measures simulator throughput — guest-seconds of
// simulated work completed per wall-clock second — at configurable
// scale, and appends the run to the committed benchmark trajectory
// BENCH_sim.json (see docs/PERFORMANCE.md §"Simulator scaling").
//
// The scenario scales BenchmarkManagerTick up: -guests guests spread
// over -hosts hosts, each guest running a self-rescheduling dirtying
// writer (1 MiB every 10 ms of virtual time), with the selected
// Algorithm 1–3 policies enabled per host. With -hosts > 1 each host
// gets its own sim kernel and the kernels advance in epoch-synced
// lockstep on separate goroutines (internal/cluster.RunEpochs), the
// parallel-testbed path the cluster experiments shard over.
//
// Everything in this file is deterministic simulation driving — it runs
// under the iorchestra-vet determinism pass. The wall-clock stopwatch,
// run stamping and trajectory I/O live in stamp.go, which is exempted
// (see internal/analysis/determinism.go nonSimFiles).
//
// Trajectory schema (BENCH_sim.json, schema 1 — append-only):
//
//	{
//	  "bench": "sim",
//	  "schema": 1,
//	  "runs": [
//	    {
//	      "time": "2026-08-08T12:00:00Z",    // wall-clock stamp of the run
//	      "git_sha": "de93f2c",              // HEAD when the run was taken
//	      "config": {
//	        "guests": 1000,                  // total guests across hosts
//	        "hosts": 1,                      // parallel per-host kernels
//	        "sim_ms": 2000,                  // measured simulated span
//	        "warmup_ms": 1000,               // untimed steady-state lead-in
//	        "write_kb": 1024,                // per-write dirtying payload
//	        "write_interval_ms": 10,         // per-guest writer cadence
//	        "burst_writes": 50,              // writes per burst, then pause
//	        "pause_ms": 700,                 // inter-burst flush window
//	        "policies": "all",               // flush|congestion|cosched|gstate|all
//	        "seed": 7,                       // scenario RNG seed
//	        "epoch_ms": 50                   // parallel barrier epoch
//	      },
//	      "results": {
//	        "wall_ms": 1234.5,               // wall time for the measured span
//	        "guest_secs_per_sec": 1620.3,    // guests × sim-seconds / wall-second
//	        "events": 2345678,               // kernel events in the measured span
//	        "events_per_sec": 1900000.0,
//	        "flush_notices": 12,             // control-plane activity, summed
//	        "congest_confirms": 0,           //   over hosts (sanity that the
//	        "congest_vetoes": 340,           //   policies actually ran)
//	        "cosched_runs": 40,
//	        "gstate_demotes": 0,             //   gstate policy activity (0
//	        "sla_violations": 0              //   unless -policies gstate)
//	      },
//	      "pass": true
//	    }
//	  ]
//	}
//
// A run whose config matches a previous run is additionally gated:
// guest_secs_per_sec more than 20% below the best prior comparable run
// fails the bench (disable with -gate=false). The trajectory is
// schema-validated on every append; a malformed file fails the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"iorchestra/internal/cluster"
	"iorchestra/internal/core"
	"iorchestra/internal/gstate"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/pagecache"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
)

type config struct {
	Guests     int    `json:"guests"`
	Hosts      int    `json:"hosts"`
	SimMS      int64  `json:"sim_ms"`
	WarmupMS   int64  `json:"warmup_ms"`
	WriteKB    int    `json:"write_kb"`
	WriteIntMS int64  `json:"write_interval_ms"`
	Burst      int    `json:"burst_writes"`
	PauseMS    int64  `json:"pause_ms"`
	Policies   string `json:"policies"`
	Seed       int64  `json:"seed"`
	EpochMS    int64  `json:"epoch_ms"`
}

type results struct {
	WallMS          float64 `json:"wall_ms"`
	GuestSecsPerSec float64 `json:"guest_secs_per_sec"`
	Events          uint64  `json:"events"`
	EventsPerSec    float64 `json:"events_per_sec"`
	FlushNotices    uint64  `json:"flush_notices"`
	CongestConfirms uint64  `json:"congest_confirms"`
	CongestVetoes   uint64  `json:"congest_vetoes"`
	CoschedRuns     uint64  `json:"cosched_runs"`
	GStateDemotes   uint64  `json:"gstate_demotes"`
	SLAViolations   uint64  `json:"sla_violations"`
}

func main() {
	guests := flag.Int("guests", 100, "total guests across all hosts")
	hosts := flag.Int("hosts", 1, "hosts; each runs its own sim kernel (parallel when >1)")
	simtime := flag.Duration("simtime", 2*time.Second, "measured span of simulated time")
	warmup := flag.Duration("warmup", time.Second, "untimed simulated lead-in to steady state")
	epoch := flag.Duration("epoch", 50*time.Millisecond, "parallel-kernel barrier epoch")
	policies := flag.String("policies", "all", "policies to enable: flush|congestion|cosched|gstate|all")
	seed := flag.Int64("seed", 7, "scenario RNG seed")
	out := flag.String("out", "BENCH_sim.json", "trajectory path (runs are appended)")
	gate := flag.Bool("gate", true, "fail if throughput drops >20% below the best comparable tracked run")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measured span here")
	flag.Parse()

	// Throughput mode: the bench allocates steadily (events, watch
	// notifications) and holds little live data, so the default GOGC=100
	// spends a quarter of the run collecting. Trading heap headroom for
	// fewer cycles is a measurement choice, not a simulation change.
	debug.SetGCPercent(1000)

	pol, err := parsePolicies(*policies)
	if err != nil {
		fatal(err)
	}
	if *guests < 1 {
		fatal(fmt.Errorf("-guests %d: need at least one guest", *guests))
	}
	if *hosts < 1 || *hosts > *guests {
		fatal(fmt.Errorf("-hosts %d out of range [1, guests]", *hosts))
	}
	cfg := config{
		Guests: *guests, Hosts: *hosts,
		SimMS: simtime.Milliseconds(), WarmupMS: warmup.Milliseconds(),
		WriteKB: writeBytes >> 10, WriteIntMS: int64(writeInterval / sim.Millisecond),
		Burst: burstWrites, PauseMS: int64(burstPause / sim.Millisecond),
		Policies: *policies, Seed: *seed, EpochMS: epoch.Milliseconds(),
	}

	b := buildBench(cfg, pol)
	b.runUntil(sim.Duration(cfg.WarmupMS) * sim.Millisecond)
	warmed := b.executed()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	end := sim.Duration(cfg.WarmupMS+cfg.SimMS) * sim.Millisecond
	wallSecs := timed(func() { b.runUntil(end) })
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}

	res := b.results(cfg, warmed, wallSecs)
	pass := res.Events > 0 && res.GuestSecsPerSec > 0 && policyActive(pol, res)
	if err := record(*out, cfg, res, pass, *gate); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sim-bench:", err)
	os.Exit(1)
}

func parsePolicies(s string) (core.Policies, error) {
	switch s {
	case "all":
		return core.All(), nil
	case "flush":
		return core.Policies{Flush: true}, nil
	case "congestion":
		return core.Policies{Congestion: true}, nil
	case "cosched":
		return core.Policies{Cosched: true}, nil
	case "gstate":
		return core.Policies{GState: true}, nil
	}
	return core.Policies{}, fmt.Errorf("bad -policies %q: want flush|congestion|cosched|gstate|all", s)
}

// policyActive checks the enabled control plane actually made decisions
// during the run — a bench that silently stopped routing store events
// to its controllers would otherwise look "fast". The bursty workload
// guarantees flush-eligible guests, so Algorithm 1 must issue orders;
// congestion verdicts and co-scheduling updates are workload-dependent
// (they need guest-visible device contention) and are reported but not
// required.
func policyActive(pol core.Policies, res results) bool {
	return !pol.Flush || res.FlushNotices > 0
}

// The dirtying workload, fixed so runs stay comparable: each guest
// writes 1 MiB every 10 ms of virtual time in 50-write bursts separated
// by 700 ms pauses — BenchmarkManagerTick's load scaled out, with the
// pauses Algorithm 1 needs to find flush-eligible guests (a guest whose
// count grew within the 200 ms cooldown is mid-burst and left alone).
const (
	writeBytes    = 1 << 20
	writeInterval = 10 * sim.Millisecond
	burstWrites   = 50
	burstPause    = 700 * sim.Millisecond
)

// bench is the constructed scenario: per-host kernels and managers.
type bench struct {
	tb       *cluster.ParallelTestbed
	managers []*core.Manager
	epoch    sim.Duration
}

// buildBench creates the testbed and populates every host with its
// share of guests. Construction order (hosts, then guests within a
// host) is fixed, so a given config always builds the same simulation.
func buildBench(cfg config, pol core.Policies) *bench {
	rng := stats.NewStream(uint64(cfg.Seed), "sim-bench")
	tb := cluster.NewParallelTestbed(cfg.Hosts, hypervisor.Config{}, rng)
	b := &bench{tb: tb, epoch: sim.Duration(cfg.EpochMS) * sim.Millisecond}
	base, extra := cfg.Guests/cfg.Hosts, cfg.Guests%cfg.Hosts
	for h := 0; h < cfg.Hosts; h++ {
		k := tb.Kernel(h)
		m := core.NewManager(tb.Host(h), pol, core.ManagerConfig{}, rng.Fork(fmt.Sprintf("mgr%d", h)))
		b.managers = append(b.managers, m)
		n := base
		if h < extra {
			n++
		}
		for i := 0; i < n; i++ {
			rt := tb.Host(h).CreateGuest(guest.Config{VCPUs: 2, MemBytes: 1 << 30},
				guest.DiskConfig{Name: "xvda", CacheConfig: pagecache.Config{
					WakeInterval: 30 * sim.Second, DirtyRatio: 0.9, BackgroundRatio: 0.8,
				}})
			if pol.GState {
				// Declare a deterministic tier mix before admission so the
				// gstate bench exercises the full demotion ladder: every
				// third guest gold, silver, bronze in turn.
				tier := []gstate.Tier{gstate.Gold, gstate.Silver, gstate.Bronze}[i%3]
				gstate.PublishSLA(tb.Host(h).Store(), rt.G.ID(), tier, gstate.SLA{})
			}
			m.EnableGuest(rt)
			d := rt.G.Disk("xvda")
			p := rt.G.NewProcess(1)
			var write func()
			burst := 0
			write = func() {
				if burst == 0 {
					burst = burstWrites
				}
				d.Write(p, writeBytes, nil)
				if burst--; burst > 0 {
					k.After(writeInterval, write)
				} else {
					k.After(burstPause, write)
				}
			}
			// Stagger starts across the write interval so guests do not
			// tick in one burst; the offset is a pure function of i.
			k.After(sim.Duration(1+i%10)*sim.Millisecond+sim.Duration(i/10)*sim.Microsecond, write)
		}
	}
	return b
}

// runUntil advances every host kernel to t (epoch-synced when parallel).
func (b *bench) runUntil(t sim.Time) {
	cluster.RunEpochs(b.tb.Kernels(), t, b.epoch, nil)
}

// executed sums dispatched events across all kernels.
func (b *bench) executed() uint64 {
	var n uint64
	for _, k := range b.tb.Kernels() {
		n += k.Executed()
	}
	return n
}

// results aggregates the measured span into the trajectory entry.
func (b *bench) results(cfg config, warmed uint64, wallSecs float64) results {
	events := b.executed() - warmed
	simSecs := float64(cfg.SimMS) / 1e3
	res := results{
		WallMS:          wallSecs * 1e3,
		GuestSecsPerSec: float64(cfg.Guests) * simSecs / wallSecs,
		Events:          events,
		EventsPerSec:    float64(events) / wallSecs,
	}
	for _, m := range b.managers {
		c := m.Counters()
		res.FlushNotices += c.FlushNotices
		res.CongestConfirms += c.Confirms
		res.CongestVetoes += c.Vetoes
		res.CoschedRuns += c.CoschedRuns
	}
	return res
}

// Wall-clock and trajectory side of sim-bench: the stopwatch around the
// measured span, the run stamp, and BENCH_sim.json load/validate/append.
// This file is exempt from the iorchestra-vet determinism pass (see
// internal/analysis/determinism.go nonSimFiles) — measuring wall time is
// its job. Nothing here feeds back into the simulation.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"
)

// benchRun is one trajectory entry; the file accumulates them so the
// simulator's throughput history stays reviewable alongside the code
// that moved it.
type benchRun struct {
	Time    string  `json:"time"`
	GitSHA  string  `json:"git_sha"`
	Config  config  `json:"config"`
	Results results `json:"results"`
	Pass    bool    `json:"pass"`
	// Note carries provenance for hand-migrated entries; the tool itself
	// never writes it.
	Note string `json:"note,omitempty"`
}

type trajectory struct {
	Bench  string     `json:"bench"`
	Schema int        `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

// timed runs fn and returns the wall-clock seconds it took.
func timed(fn func()) float64 {
	t0 := time.Now()
	fn()
	return time.Since(t0).Seconds()
}

// gitSHA stamps runs with the commit they measured; empty outside a
// checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// record appends the run to the trajectory at path, enforcing schema
// validity and (when gate is set) the >20% comparable-config regression
// bar. It prints the one-line summary and exits non-zero on failure.
func record(path string, cfg config, res results, pass bool, gate bool) error {
	traj, err := loadTrajectory(path)
	if err != nil {
		return err
	}
	best, bestSHA := bestComparable(traj, cfg)
	traj.Runs = append(traj.Runs, benchRun{
		Time:    time.Now().UTC().Format(time.RFC3339),
		GitSHA:  gitSHA(),
		Config:  cfg,
		Results: res,
		Pass:    pass,
	})
	if err := validateTrajectory(traj); err != nil {
		return fmt.Errorf("%s failed schema validation: %w", path, err)
	}
	blob, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("sim-bench: %d guests on %d host(s), %.0f ms simulated in %.0f ms wall → %.1f guest-s/s (%.0f events/s, %d flush orders, %d verdicts, %d cosched runs) → %s (run %d)\n",
		cfg.Guests, cfg.Hosts, float64(cfg.SimMS), res.WallMS,
		res.GuestSecsPerSec, res.EventsPerSec,
		res.FlushNotices, res.CongestConfirms+res.CongestVetoes, res.CoschedRuns,
		path, len(traj.Runs))
	if !pass {
		fmt.Fprintln(os.Stderr, "sim-bench: FAIL (no simulated work or the enabled control plane made no decisions)")
		os.Exit(1)
	}
	if gate && best > 0 && res.GuestSecsPerSec < 0.8*best {
		fmt.Fprintf(os.Stderr,
			"sim-bench: REGRESSION — %.1f guest-s/s is %.0f%% below the best comparable tracked run (%.1f guest-s/s at %s)\n",
			res.GuestSecsPerSec, 100*(1-res.GuestSecsPerSec/best), best, bestSHA)
		os.Exit(1)
	}
	return nil
}

// loadTrajectory reads the existing trajectory. A missing file starts a
// fresh one; an unreadable or wrong-bench file is an error rather than
// a silent clobber of tracked history.
func loadTrajectory(path string) (trajectory, error) {
	fresh := trajectory{Bench: "sim", Schema: 1}
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return fresh, nil
	}
	if err != nil {
		return trajectory{}, err
	}
	var t trajectory
	if err := json.Unmarshal(blob, &t); err != nil {
		return trajectory{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if t.Bench != "sim" || t.Schema != 1 {
		return trajectory{}, fmt.Errorf("%s is not a sim schema-1 trajectory (bench %q, schema %d)", path, t.Bench, t.Schema)
	}
	return t, nil
}

// validateTrajectory is the schema gate make bench-sim relies on: every
// entry — including previously committed ones — must carry a coherent
// config and results, so a hand-edited or truncated file fails loudly.
func validateTrajectory(t trajectory) error {
	if t.Bench != "sim" || t.Schema != 1 {
		return fmt.Errorf("bad header: bench %q, schema %d", t.Bench, t.Schema)
	}
	for i, r := range t.Runs {
		c, res := r.Config, r.Results
		switch {
		case r.Time == "" && r.Note == "":
			return fmt.Errorf("run %d: missing time stamp", i)
		case c.Guests <= 0 || c.Hosts <= 0 || c.Hosts > c.Guests:
			return fmt.Errorf("run %d: bad scale (guests %d, hosts %d)", i, c.Guests, c.Hosts)
		case c.SimMS <= 0 || c.WarmupMS < 0:
			return fmt.Errorf("run %d: bad span (sim_ms %d, warmup_ms %d)", i, c.SimMS, c.WarmupMS)
		case c.Policies == "":
			return fmt.Errorf("run %d: missing policies", i)
		case res.WallMS <= 0 || res.GuestSecsPerSec <= 0:
			return fmt.Errorf("run %d: bad results (wall_ms %v, guest_secs_per_sec %v)", i, res.WallMS, res.GuestSecsPerSec)
		}
	}
	return nil
}

// bestComparable finds the highest passing throughput among tracked
// runs with the identical scenario config — the bar the regression gate
// holds new runs to.
func bestComparable(traj trajectory, cfg config) (float64, string) {
	var best float64
	sha := "?"
	for _, r := range traj.Runs {
		if r.Config == cfg && r.Pass && r.Results.GuestSecsPerSec > best {
			best = r.Results.GuestSecsPerSec
			if r.GitSHA != "" {
				sha = r.GitSHA
			}
		}
	}
	return best, sha
}

// Command iorchestra-trace loads an NDJSON decision trace (produced by
// iorchestra-sim -trace, experiments -trace, or any code holding a
// *trace.Recorder) and prints per-domain decision summaries and
// timelines — the debugging tool for Algorithm 1–3 behaviour.
//
// It also tails a live iorchestra-stored trace endpoint: pass a
// tcp://host:port or unix:///path URL (the server's -trace-listen
// address) and records stream to stdout as they happen, with the
// summary printed when the server closes the stream or -count records
// have arrived.
//
//	iorchestra-trace run.ndjson                  # per-domain summary
//	iorchestra-trace -timeline run.ndjson        # full event timeline
//	iorchestra-trace -dom 3 -timeline run.ndjson # one domain's timeline
//	iorchestra-trace -kind flush.order run.ndjson
//	cat run.ndjson | iorchestra-trace -          # read stdin
//	iorchestra-trace tcp://127.0.0.1:7012        # live tail a server
//	iorchestra-trace -count 100 unix:///run/iorchestra/trace.sock
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"iorchestra/internal/trace"
)

func main() {
	dom := flag.Int("dom", -1, "restrict to one domain id (-1 = all)")
	kind := flag.String("kind", "", "comma-separated kind filter (e.g. flush.order,congest.veto)")
	timeline := flag.Bool("timeline", false, "print the event timeline instead of only the summary")
	count := flag.Int("count", 0, "live tail: stop after this many matching records (0 = until the server closes)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: iorchestra-trace [flags] <trace.ndjson | - | tcp://addr | unix://path>\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	if network, addr, ok := liveEndpoint(name); ok {
		if err := tail(network, addr, *dom, *kind, *count); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var in io.Reader
	if name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	events, err := trace.ReadNDJSON(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	events = filter(events, *dom, *kind)
	if len(events) == 0 {
		fmt.Println("trace: no events match")
		return
	}

	if *timeline {
		for _, e := range events {
			fmt.Println(e)
		}
		fmt.Println()
	}
	fmt.Print(trace.Summarize(events).Format())
}

// liveEndpoint recognizes the tcp:// and unix:// URL forms that select
// live-tail mode against an iorchestra-stored trace listener.
func liveEndpoint(name string) (network, addr string, ok bool) {
	if a, ok := strings.CutPrefix(name, "tcp://"); ok {
		return "tcp", a, true
	}
	if a, ok := strings.CutPrefix(name, "unix://"); ok {
		return "unix", a, true
	}
	return "", "", false
}

// tail streams NDJSON records from a live server, echoing each matching
// record as it lands and summarizing once the stream ends.
func tail(network, addr string, dom int, kinds string, count int) error {
	c, err := net.Dial(network, addr)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "tailing %s://%s (ctrl-c to stop)\n", network, addr)
	sc := bufio.NewScanner(c)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var events []trace.Record
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec trace.Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return fmt.Errorf("trace stream: %w", err)
		}
		if kept := filter([]trace.Record{rec}, dom, kinds); len(kept) == 0 {
			continue
		}
		events = append(events, rec)
		fmt.Println(rec)
		if count > 0 && len(events) >= count {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(events) == 0 {
		fmt.Println("trace: no events match")
		return nil
	}
	fmt.Println()
	fmt.Print(trace.Summarize(events).Format())
	return nil
}

// filter keeps events matching the domain and kind selections.
func filter(events []trace.Record, dom int, kinds string) []trace.Record {
	want := map[trace.Kind]bool{}
	for _, k := range strings.Split(kinds, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[trace.Kind(k)] = true
		}
	}
	if dom < 0 && len(want) == 0 {
		return events
	}
	out := events[:0:0]
	for _, e := range events {
		if dom >= 0 && e.Dom != dom {
			continue
		}
		if len(want) > 0 && !want[e.Kind] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Command iorchestra-trace loads an NDJSON decision trace (produced by
// iorchestra-sim -trace, experiments -trace, or any code holding a
// *trace.Recorder) and prints per-domain decision summaries and
// timelines — the debugging tool for Algorithm 1–3 behaviour.
//
//	iorchestra-trace run.ndjson                  # per-domain summary
//	iorchestra-trace -timeline run.ndjson        # full event timeline
//	iorchestra-trace -dom 3 -timeline run.ndjson # one domain's timeline
//	iorchestra-trace -kind flush.order run.ndjson
//	cat run.ndjson | iorchestra-trace -          # read stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"iorchestra/internal/trace"
)

func main() {
	dom := flag.Int("dom", -1, "restrict to one domain id (-1 = all)")
	kind := flag.String("kind", "", "comma-separated kind filter (e.g. flush.order,congest.veto)")
	timeline := flag.Bool("timeline", false, "print the event timeline instead of only the summary")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: iorchestra-trace [flags] <trace.ndjson | ->\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var in io.Reader
	if name := flag.Arg(0); name == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	events, err := trace.ReadNDJSON(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	events = filter(events, *dom, *kind)
	if len(events) == 0 {
		fmt.Println("trace: no events match")
		return
	}

	if *timeline {
		for _, e := range events {
			fmt.Println(e)
		}
		fmt.Println()
	}
	fmt.Print(trace.Summarize(events).Format())
}

// filter keeps events matching the domain and kind selections.
func filter(events []trace.Record, dom int, kinds string) []trace.Record {
	want := map[trace.Kind]bool{}
	for _, k := range strings.Split(kinds, ",") {
		if k = strings.TrimSpace(k); k != "" {
			want[trace.Kind(k)] = true
		}
	}
	if dom < 0 && len(want) == 0 {
		return events
	}
	out := events[:0:0]
	for _, e := range events {
		if dom >= 0 && e.Dom != dom {
			continue
		}
		if len(want) > 0 && !want[e.Kind] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Command netstore-load drives an iorchestra-stored server (in-process
// by default, or an external one via -addr) with a fleet of concurrent
// clients and writes a benchmark report.
//
// The fleet is live clients plus deliberately stalled watchers: each
// live client registers a watch over its own subtree and hammers the
// store with writes, reads, lists and transactions; stalled clients
// register a watch over the whole tree and never read their socket. The
// bench passes when every live client survives with zero transport
// errors while the server evicts every stalled one — the slow-client
// isolation property the wire protocol exists to provide.
//
// Report schema (BENCH_netstore.json):
//
//	{
//	  "bench": "netstore",                 // report discriminator
//	  "config": {
//	    "clients": 64,                     // live clients
//	    "stalled_clients": 4,              // never-reading watchers
//	    "duration_ms": 2000,               // op-loop wall time
//	    "keys_per_client": 32,             // keys in each client's subtree
//	    "value_bytes": 256,                // payload size per write
//	    "notify_queue": 256,               // server per-conn event bound
//	    "write_timeout_ms": 500,           // server eviction window
//	    "network": "unix"                  // transport
//	  },
//	  "results": {
//	    "ops": 123456,                     // completed client operations
//	    "ops_per_sec": 61728.0,
//	    "op_errors": 0,                    // failed operations (live clients)
//	    "latency_us": {                    // per-op round-trip latency
//	      "mean": 81.2, "p50": 64.0, "p90": 120.0, "p99": 310.0, "max": 1520.0
//	    },
//	    "events_received": 4096,           // watch events seen by live clients
//	    "evicted": 4,                      // connections the server evicted
//	    "live_client_failures": 0,         // live clients with transport errors
//	    "server": { ... }                  // netstore.Counters snapshot
//	  },
//	  "pass": true                         // live clients clean AND stalled evicted
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iorchestra/internal/metrics"
	"iorchestra/internal/netstore"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

type config struct {
	Clients      int    `json:"clients"`
	Stalled      int    `json:"stalled_clients"`
	DurationMS   int64  `json:"duration_ms"`
	Keys         int    `json:"keys_per_client"`
	ValueBytes   int    `json:"value_bytes"`
	NotifyQueue  int    `json:"notify_queue"`
	WriteTimeout int64  `json:"write_timeout_ms"`
	Network      string `json:"network"`
}

type latencies struct {
	MeanUS float64 `json:"mean"`
	P50US  float64 `json:"p50"`
	P90US  float64 `json:"p90"`
	P99US  float64 `json:"p99"`
	MaxUS  float64 `json:"max"`
}

type results struct {
	Ops            uint64            `json:"ops"`
	OpsPerSec      float64           `json:"ops_per_sec"`
	OpErrors       uint64            `json:"op_errors"`
	Latency        latencies         `json:"latency_us"`
	EventsReceived uint64            `json:"events_received"`
	Evicted        uint64            `json:"evicted"`
	LiveFailures   int               `json:"live_client_failures"`
	Server         netstore.Counters `json:"server"`
}

type report struct {
	Bench   string  `json:"bench"`
	Config  config  `json:"config"`
	Results results `json:"results"`
	Pass    bool    `json:"pass"`
}

func main() {
	clients := flag.Int("clients", 64, "live clients")
	stalled := flag.Int("stalled", 4, "stalled clients that never read their watch stream")
	duration := flag.Duration("duration", 2*time.Second, "op-loop duration")
	keys := flag.Int("keys", 32, "keys per client subtree")
	valueBytes := flag.Int("value-bytes", 256, "write payload size")
	notifyQueue := flag.Int("notify-queue", 256, "in-process server: per-conn event queue bound")
	writeTimeout := flag.Duration("write-timeout", 500*time.Millisecond, "in-process server: eviction window")
	addr := flag.String("addr", "", "external server URL (tcp://host:port or unix:///path); empty = spawn in-process")
	out := flag.String("out", "BENCH_netstore.json", "report path")
	flag.Parse()

	cfg := config{
		Clients: *clients, Stalled: *stalled, DurationMS: duration.Milliseconds(),
		Keys: *keys, ValueBytes: *valueBytes, NotifyQueue: *notifyQueue,
		WriteTimeout: writeTimeout.Milliseconds(),
	}

	var srv *netstore.Server
	network, address := "", ""
	if *addr != "" {
		var ok bool
		if address, ok = strings.CutPrefix(*addr, "tcp://"); ok {
			network = "tcp"
		} else if address, ok = strings.CutPrefix(*addr, "unix://"); ok {
			network = "unix"
		} else {
			fatal(fmt.Errorf("bad -addr %q: want tcp:// or unix://", *addr))
		}
	} else {
		srv = netstore.NewServer(netstore.Options{
			NotifyQueue:  *notifyQueue,
			WriteTimeout: *writeTimeout,
		})
		defer srv.Close()
		dir, err := os.MkdirTemp("", "netstore-load")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		network, address = "unix", filepath.Join(dir, "store.sock")
		l, err := net.Listen(network, address)
		if err != nil {
			fatal(err)
		}
		go srv.Serve(l)
	}
	cfg.Network = network

	res, err := run(network, address, cfg, *duration)
	if err != nil {
		fatal(err)
	}
	if srv != nil {
		res.Server = srv.Counters()
		res.Evicted = res.Server.Evicted
	}

	rep := report{Bench: "netstore", Config: cfg, Results: *res}
	rep.Pass = res.LiveFailures == 0 && res.OpErrors == 0 &&
		(cfg.Stalled == 0 || res.Evicted >= uint64(cfg.Stalled))
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("netstore-load: %d ops (%.0f/s), p99 %.0fµs, %d events, %d evicted, %d live failures → %s\n",
		res.Ops, res.OpsPerSec, res.Latency.P99US, res.EventsReceived, res.Evicted, res.LiveFailures, *out)
	if !rep.Pass {
		fmt.Fprintln(os.Stderr, "netstore-load: FAIL (live clients must stay clean and stalled clients must be evicted)")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netstore-load:", err)
	os.Exit(1)
}

// run executes the fleet and aggregates results.
func run(network, address string, cfg config, duration time.Duration) (*results, error) {
	payload := strings.Repeat("x", cfg.ValueBytes)
	var (
		ops      atomic.Uint64
		opErrs   atomic.Uint64
		events   atomic.Uint64
		failures atomic.Int64
	)
	hists := make([]*metrics.Histogram, cfg.Clients)

	// Stalled watchers first, so their tree-wide watches are installed
	// before the write storm starts filling their queues.
	for i := 0; i < cfg.Stalled; i++ {
		c, err := netstore.DialStalled(network, address, store.Dom0, store.Root)
		if err != nil {
			return nil, fmt.Errorf("stalled watcher %d: %w", i, err)
		}
		defer c.Close()
	}

	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		dom := store.DomID(i + 1)
		h := metrics.NewHistogram()
		hists[i] = h
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := netstore.Dial(network, address, dom, "")
			if err != nil {
				failures.Add(1)
				return
			}
			defer c.Close()
			base := store.DomainPath(dom)
			for k := 0; k < cfg.Keys; k++ {
				if err := c.Write(fmt.Sprintf("%s/k%d", base, k), "0"); err != nil {
					failures.Add(1)
					return
				}
			}
			if _, err := c.Watch(base, func(string, string) { events.Add(1) }); err != nil {
				failures.Add(1)
				return
			}
			for n := 0; time.Now().Before(deadline); n++ {
				key := fmt.Sprintf("%s/k%d", base, n%cfg.Keys)
				t0 := time.Now()
				var err error
				switch n % 8 {
				case 6:
					_, err = c.Read(key)
				case 7:
					_, err = c.List(base)
				default:
					err = c.Write(key, payload)
				}
				if err != nil {
					opErrs.Add(1)
					continue
				}
				h.Record(sim.Time(time.Since(t0).Nanoseconds()))
				ops.Add(1)
			}
			// The live-client health check: a final round trip and a clean
			// transport after the storm.
			if err := c.Ping(); err != nil {
				failures.Add(1)
				return
			}
			if err := c.Err(); err != nil {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	all := metrics.NewHistogram()
	for _, h := range hists {
		all.Merge(h)
	}
	us := func(t sim.Time) float64 { return float64(t) / 1e3 }
	res := &results{
		Ops:            ops.Load(),
		OpsPerSec:      float64(ops.Load()) / elapsed.Seconds(),
		OpErrors:       opErrs.Load(),
		EventsReceived: events.Load(),
		LiveFailures:   int(failures.Load()),
		Latency: latencies{
			MeanUS: us(all.Mean()),
			P50US:  us(all.Percentile(50)),
			P90US:  us(all.Percentile(90)),
			P99US:  us(all.Percentile(99)),
			MaxUS:  us(all.Max()),
		},
	}
	return res, nil
}

// Command netstore-load drives an iorchestra-stored server (in-process
// by default, or an external one via -addr) with a fleet of concurrent
// clients and appends a run to the benchmark trajectory.
//
// The fleet is live clients plus deliberately stalled watchers: each
// live client registers a watch over its own subtree and hammers the
// store with writes, reads, lists — singly or in batched frames
// (-batch) — and the server may shard its store loops (-shards). The
// bench passes when every live client survives with zero transport
// errors while the server evicts every stalled one — the slow-client
// isolation property the wire protocol exists to provide.
//
// Trajectory schema (BENCH_netstore.json, schema 2 — append-only; see
// docs/PERFORMANCE.md for the methodology and the regression runbook):
//
//	{
//	  "bench": "netstore",
//	  "schema": 2,
//	  "runs": [
//	    {
//	      "time": "2026-08-08T12:00:00Z",    // wall-clock stamp of the run
//	      "git_sha": "c2d9603",              // HEAD when the run was taken
//	      "config": {
//	        "clients": 64,                   // live clients
//	        "stalled_clients": 4,            // never-reading watchers
//	        "duration_ms": 2000,             // op-loop wall time
//	        "keys_per_client": 32,           // keys in each client's subtree
//	        "value_bytes": 256,              // payload size per write
//	        "notify_queue": 256,             // server per-conn event bound
//	        "write_timeout_ms": 500,         // server eviction window
//	        "network": "unix",               // transport
//	        "batch": 32,                     // ops per frame (1 = unbatched)
//	        "shards": 4,                     // server store-loop shards
//	        "proto": 2                       // client protocol version
//	      },
//	      "results": {
//	        "ops": 123456,                   // completed client operations
//	        "ops_per_sec": 61728.0,
//	        "op_errors": 0,                  // failed operations (live clients)
//	        "latency_us": {                  // all ops; batched ops count the
//	          "mean": 81.2, "p50": 64.0,     // frame RTT once per member op
//	          "p90": 120.0, "p99": 310.0, "max": 1520.0
//	        },
//	        "op_latency_us": {               // same, split by op class
//	          "write": { ... }, "read": { ... }, "list": { ... }
//	        },
//	        "events_received": 4096,         // watch events seen by live clients
//	        "evicted": 4,                    // connections the server evicted
//	        "live_client_failures": 0,       // live clients with transport errors
//	        "server": { ... }                // netstore.Counters snapshot
//	      },
//	      "pass": true                       // live clean AND stalled evicted
//	    }
//	  ]
//	}
//
// A run whose config matches a previous run is additionally gated:
// throughput more than 20% below the best prior comparable run fails
// the bench (disable with -gate=false). Pre-schema-2 single-run reports
// are migrated into the trajectory on first append.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime/debug"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"iorchestra/internal/metrics"
	"iorchestra/internal/netstore"
	"iorchestra/internal/sim"
	"iorchestra/internal/store"
)

type config struct {
	Clients      int    `json:"clients"`
	Stalled      int    `json:"stalled_clients"`
	DurationMS   int64  `json:"duration_ms"`
	Keys         int    `json:"keys_per_client"`
	ValueBytes   int    `json:"value_bytes"`
	NotifyQueue  int    `json:"notify_queue"`
	WriteTimeout int64  `json:"write_timeout_ms"`
	Network      string `json:"network"`
	Batch        int    `json:"batch"`
	Shards       int    `json:"shards"`
	Proto        uint8  `json:"proto"`
	GOGC         int    `json:"gogc,omitempty"`
}

type latencies struct {
	MeanUS float64 `json:"mean"`
	P50US  float64 `json:"p50"`
	P90US  float64 `json:"p90"`
	P99US  float64 `json:"p99"`
	MaxUS  float64 `json:"max"`
}

type results struct {
	Ops            uint64               `json:"ops"`
	OpsPerSec      float64              `json:"ops_per_sec"`
	OpErrors       uint64               `json:"op_errors"`
	Latency        latencies            `json:"latency_us"`
	OpLatency      map[string]latencies `json:"op_latency_us,omitempty"`
	EventsReceived uint64               `json:"events_received"`
	Evicted        uint64               `json:"evicted"`
	LiveFailures   int                  `json:"live_client_failures"`
	Server         netstore.Counters    `json:"server"`
}

// benchRun is one trajectory entry; the file accumulates them so the
// hot path's history stays reviewable alongside the code that moved it.
type benchRun struct {
	Time    string  `json:"time"`
	GitSHA  string  `json:"git_sha"`
	Config  config  `json:"config"`
	Results results `json:"results"`
	Pass    bool    `json:"pass"`
	// Note carries provenance for hand-migrated entries (e.g. the
	// pre-trajectory seed measurement); the tool itself never writes it.
	Note string `json:"note,omitempty"`
}

type trajectory struct {
	Bench  string     `json:"bench"`
	Schema int        `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

// legacyReport is the pre-trajectory (schema 1) single-run layout,
// accepted on read so old reports migrate instead of being clobbered.
type legacyReport struct {
	Bench   string  `json:"bench"`
	Config  config  `json:"config"`
	Results results `json:"results"`
	Pass    bool    `json:"pass"`
}

func main() {
	clients := flag.Int("clients", 64, "live clients")
	stalled := flag.Int("stalled", 4, "stalled clients that never read their watch stream")
	duration := flag.Duration("duration", 2*time.Second, "op-loop duration")
	keys := flag.Int("keys", 32, "keys per client subtree")
	valueBytes := flag.Int("value-bytes", 256, "write payload size")
	batch := flag.Int("batch", 1, "operations per wire frame (1 = unbatched)")
	shards := flag.Int("shards", 1, "in-process server: store-loop shards")
	proto := flag.Int("proto", int(netstore.ProtocolVersion), "client protocol version to negotiate")
	notifyQueue := flag.Int("notify-queue", 256, "in-process server: per-conn event queue bound")
	writeTimeout := flag.Duration("write-timeout", 500*time.Millisecond, "in-process server: eviction window")
	addr := flag.String("addr", "", "external server URL (tcp://host:port or unix:///path); empty = spawn in-process")
	out := flag.String("out", "BENCH_netstore.json", "trajectory path (runs are appended)")
	gate := flag.Bool("gate", true, "fail if throughput drops >20% below the best comparable tracked run")
	gogc := flag.Int("gogc", 0, "GC percent for this process, 0 = runtime default (recorded in the run config)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile here (regression triage; see docs/PERFORMANCE.md)")
	flag.Parse()

	if *gogc > 0 {
		debug.SetGCPercent(*gogc)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if *batch < 1 || *batch > netstore.MaxBatchOps {
		fatal(fmt.Errorf("-batch %d out of range [1, %d]", *batch, netstore.MaxBatchOps))
	}
	if *proto < int(netstore.ProtocolV1) || *proto > int(netstore.ProtocolVersion) {
		fatal(fmt.Errorf("-proto %d out of range [%d, %d]", *proto, netstore.ProtocolV1, netstore.ProtocolVersion))
	}
	cfg := config{
		Clients: *clients, Stalled: *stalled, DurationMS: duration.Milliseconds(),
		Keys: *keys, ValueBytes: *valueBytes, NotifyQueue: *notifyQueue,
		WriteTimeout: writeTimeout.Milliseconds(),
		Batch:        *batch, Shards: *shards, Proto: uint8(*proto), GOGC: *gogc,
	}

	var srv *netstore.Server
	network, address := "", ""
	if *addr != "" {
		var ok bool
		if address, ok = strings.CutPrefix(*addr, "tcp://"); ok {
			network = "tcp"
		} else if address, ok = strings.CutPrefix(*addr, "unix://"); ok {
			network = "unix"
		} else {
			fatal(fmt.Errorf("bad -addr %q: want tcp:// or unix://", *addr))
		}
	} else {
		srv = netstore.NewServer(netstore.Options{
			NotifyQueue:  *notifyQueue,
			WriteTimeout: *writeTimeout,
			Shards:       *shards,
		})
		defer srv.Close()
		dir, err := os.MkdirTemp("", "netstore-load")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		network, address = "unix", filepath.Join(dir, "store.sock")
		l, err := net.Listen(network, address)
		if err != nil {
			fatal(err)
		}
		go srv.Serve(l)
	}
	cfg.Network = network

	res, err := run(network, address, cfg, *duration)
	if err != nil {
		fatal(err)
	}
	if srv != nil {
		res.Server = srv.Counters()
		res.Evicted = res.Server.Evicted
	}

	entry := benchRun{
		Time:    time.Now().UTC().Format(time.RFC3339),
		GitSHA:  gitSHA(),
		Config:  cfg,
		Results: *res,
	}
	entry.Pass = res.LiveFailures == 0 && res.OpErrors == 0 &&
		(cfg.Stalled == 0 || res.Evicted >= uint64(cfg.Stalled))

	traj := loadTrajectory(*out)
	best, bestSHA := bestComparable(traj, cfg)
	traj.Runs = append(traj.Runs, entry)
	blob, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("netstore-load: %d ops (%.0f/s), p50 %.0fµs p99 %.0fµs, batch %d, %d shards, proto v%d, %d events, %d evicted, %d live failures → %s (run %d)\n",
		res.Ops, res.OpsPerSec, res.Latency.P50US, res.Latency.P99US,
		cfg.Batch, cfg.Shards, cfg.Proto,
		res.EventsReceived, res.Evicted, res.LiveFailures, *out, len(traj.Runs))
	if !entry.Pass {
		fmt.Fprintln(os.Stderr, "netstore-load: FAIL (live clients must stay clean and stalled clients must be evicted)")
		os.Exit(1)
	}
	if *gate && best > 0 && res.OpsPerSec < 0.8*best {
		fmt.Fprintf(os.Stderr,
			"netstore-load: REGRESSION — %.0f ops/s is %.0f%% below the best comparable tracked run (%.0f ops/s at %s)\n",
			res.OpsPerSec, 100*(1-res.OpsPerSec/best), best, bestSHA)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "netstore-load:", err)
	os.Exit(1)
}

// gitSHA stamps runs with the commit they measured; empty outside a
// checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// loadTrajectory reads the existing trajectory, migrating a legacy
// single-run report into the first entry. A missing or unreadable file
// starts a fresh trajectory.
func loadTrajectory(path string) trajectory {
	traj := trajectory{Bench: "netstore", Schema: 2}
	blob, err := os.ReadFile(path)
	if err != nil {
		return traj
	}
	var t trajectory
	if err := json.Unmarshal(blob, &t); err == nil && t.Schema >= 2 {
		t.Bench, t.Schema = "netstore", 2
		return t
	}
	var legacy legacyReport
	if err := json.Unmarshal(blob, &legacy); err == nil && legacy.Bench == "netstore" {
		// Schema 1 predates batching/sharding; those runs were unbatched
		// v1 against a single store loop.
		if legacy.Config.Batch == 0 {
			legacy.Config.Batch = 1
		}
		if legacy.Config.Shards == 0 {
			legacy.Config.Shards = 1
		}
		if legacy.Config.Proto == 0 {
			legacy.Config.Proto = 1
		}
		traj.Runs = append(traj.Runs, benchRun{
			Config: legacy.Config, Results: legacy.Results, Pass: legacy.Pass,
		})
	}
	return traj
}

// bestComparable finds the highest passing throughput among tracked
// runs with the identical workload config — the bar the regression gate
// holds new runs to.
func bestComparable(traj trajectory, cfg config) (float64, string) {
	var best float64
	sha := "?"
	for _, r := range traj.Runs {
		if r.Config == cfg && r.Pass && r.Results.OpsPerSec > best {
			best = r.Results.OpsPerSec
			if r.GitSHA != "" {
				sha = r.GitSHA
			}
		}
	}
	return best, sha
}

// opClasses are the latency buckets; batched ops record the frame RTT
// once per member op in the member's class, so class percentiles stay
// comparable across batch sizes (each op's latency is the time its
// caller waited).
var opClasses = []string{"write", "read", "list"}

type classHists struct {
	write, read, list *metrics.Histogram
}

func newClassHists() *classHists {
	return &classHists{
		write: metrics.NewHistogram(),
		read:  metrics.NewHistogram(),
		list:  metrics.NewHistogram(),
	}
}

func (h *classHists) of(class string) *metrics.Histogram {
	switch class {
	case "read":
		return h.read
	case "list":
		return h.list
	default:
		return h.write
	}
}

// mixClass is the fixed op mix: 6 writes, 1 read, 1 list per 8 ops.
func mixClass(n int) string {
	switch n % 8 {
	case 6:
		return "read"
	case 7:
		return "list"
	default:
		return "write"
	}
}

// run executes the fleet and aggregates results.
func run(network, address string, cfg config, duration time.Duration) (*results, error) {
	payload := strings.Repeat("x", cfg.ValueBytes)
	var (
		ops      atomic.Uint64
		opErrs   atomic.Uint64
		events   atomic.Uint64
		failures atomic.Int64
	)
	hists := make([]*classHists, cfg.Clients)

	// Stalled watchers first, so their tree-wide watches are installed
	// before the write storm starts filling their queues.
	for i := 0; i < cfg.Stalled; i++ {
		c, err := netstore.DialStalled(network, address, store.Dom0, store.Root)
		if err != nil {
			return nil, fmt.Errorf("stalled watcher %d: %w", i, err)
		}
		defer c.Close()
	}

	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		dom := store.DomID(i + 1)
		h := newClassHists()
		hists[i] = h
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := netstore.DialVersion(network, address, dom, "", cfg.Proto)
			if err != nil {
				failures.Add(1)
				return
			}
			defer c.Close()
			base := store.DomainPath(dom)
			for k := 0; k < cfg.Keys; k++ {
				if err := c.Write(fmt.Sprintf("%s/k%d", base, k), "0"); err != nil {
					failures.Add(1)
					return
				}
			}
			if _, err := c.Watch(base, func(string, string) { events.Add(1) }); err != nil {
				failures.Add(1)
				return
			}
			key := func(n int) string { return fmt.Sprintf("%s/k%d", base, n%cfg.Keys) }
			for n := 0; time.Now().Before(deadline); {
				if cfg.Batch <= 1 {
					class := mixClass(n)
					t0 := time.Now()
					var err error
					switch class {
					case "read":
						_, err = c.Read(key(n))
					case "list":
						_, err = c.List(base)
					default:
						err = c.Write(key(n), payload)
					}
					n++
					if err != nil {
						opErrs.Add(1)
						continue
					}
					h.of(class).Record(sim.Time(time.Since(t0).Nanoseconds()))
					ops.Add(1)
					continue
				}
				// Batched: the same mix packed into one frame. The RTT is
				// every member's latency — each op waited exactly that long.
				b := c.NewBatch()
				classes := make([]string, cfg.Batch)
				for j := 0; j < cfg.Batch; j++ {
					classes[j] = mixClass(n)
					switch classes[j] {
					case "read":
						b.Read(key(n))
					case "list":
						b.List(base)
					default:
						b.Write(key(n), payload)
					}
					n++
				}
				t0 := time.Now()
				res, err := b.Run()
				rtt := sim.Time(time.Since(t0).Nanoseconds())
				if err != nil {
					opErrs.Add(uint64(cfg.Batch))
					continue
				}
				for j, r := range res {
					if r.Err != nil {
						opErrs.Add(1)
						continue
					}
					h.of(classes[j]).Record(rtt)
					ops.Add(1)
				}
			}
			// The live-client health check: a final round trip and a clean
			// transport after the storm.
			if err := c.Ping(); err != nil {
				failures.Add(1)
				return
			}
			if err := c.Err(); err != nil {
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	all := metrics.NewHistogram()
	perClass := map[string]*metrics.Histogram{}
	for _, class := range opClasses {
		perClass[class] = metrics.NewHistogram()
	}
	for _, h := range hists {
		for _, class := range opClasses {
			perClass[class].Merge(h.of(class))
			all.Merge(h.of(class))
		}
	}
	res := &results{
		Ops:            ops.Load(),
		OpsPerSec:      float64(ops.Load()) / elapsed.Seconds(),
		OpErrors:       opErrs.Load(),
		EventsReceived: events.Load(),
		LiveFailures:   int(failures.Load()),
		Latency:        summarize(all),
		OpLatency:      map[string]latencies{},
	}
	for _, class := range opClasses {
		res.OpLatency[class] = summarize(perClass[class])
	}
	return res, nil
}

func summarize(h *metrics.Histogram) latencies {
	us := func(t sim.Time) float64 { return float64(t) / 1e3 }
	if h.Count() == 0 {
		return latencies{}
	}
	return latencies{
		MeanUS: us(h.Mean()),
		P50US:  us(h.Percentile(50)),
		P90US:  us(h.Percentile(90)),
		P99US:  us(h.Percentile(99)),
		MaxUS:  us(h.Max()),
	}
}

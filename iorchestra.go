// Package iorchestra is a library-scale reproduction of "IOrchestra:
// Supporting High-Performance Data-Intensive Applications in the Cloud via
// Collaborative Virtualization" (SC '15): a collaborative-virtualization
// framework that bridges the semantic gap between guest VMs and the
// hypervisor for block I/O.
//
// The real prototype modifies Linux and Xen; this reproduction runs the
// identical control plane (a XenStore-equivalent system store with
// watches, an event-channel bus, the monitoring and management modules,
// and the paper's three policies) over a deterministic discrete-event
// model of the data plane (guest I/O stacks, paravirtual rings, NUMA
// hosts with dedicated polling I/O cores, and an SSD RAID0 array).
//
// The top-level entry point is Platform: pick a System (Baseline, SDC,
// DIF or IOrchestra), create VMs, attach workloads from the workload and
// apps packages, and run the simulation kernel.
//
//	p := iorchestra.NewPlatform(iorchestra.SystemIOrchestra, 42)
//	vm := p.NewVM(2, 4) // 2 VCPUs, 4 GB
//	... drive vm.G's disks, then p.Kernel.RunUntil(...)
package iorchestra

import (
	"fmt"

	"iorchestra/internal/baselines"
	"iorchestra/internal/core"
	"iorchestra/internal/device"
	"iorchestra/internal/fault"
	"iorchestra/internal/gstate"
	"iorchestra/internal/guest"
	"iorchestra/internal/hypervisor"
	"iorchestra/internal/sim"
	"iorchestra/internal/stats"
	"iorchestra/internal/trace"
)

// Re-exported core types, so downstream users work through one import.
type (
	// Kernel is the discrete-event simulation executive.
	Kernel = sim.Kernel
	// Time is virtual time in nanoseconds.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Host is one physical machine.
	Host = hypervisor.Host
	// HostConfig parameterizes a host.
	HostConfig = hypervisor.Config
	// VM couples a guest with its host-side runtime.
	VM = hypervisor.GuestRuntime
	// GuestConfig describes a guest VM.
	GuestConfig = guest.Config
	// DiskConfig describes a virtual disk.
	DiskConfig = guest.DiskConfig
	// Manager is IOrchestra's hypervisor-side module pair.
	Manager = core.Manager
	// Policies selects IOrchestra's collaborative functions.
	Policies = core.Policies
	// Stream is a deterministic random stream.
	Stream = stats.Stream
	// TraceRecorder is the unified decision-trace recorder.
	TraceRecorder = trace.Recorder
	// TraceRecord is one decision-trace event.
	TraceRecord = trace.Record
	// FaultSpec configures the deterministic fault-injection layer.
	FaultSpec = fault.Spec
	// FaultInjector is the per-platform fault-injection engine.
	FaultInjector = fault.Injector
)

// ParseFaultSpec parses the -faults command-line grammar (see
// docs/FAULTS.md) into a FaultSpec.
func ParseFaultSpec(raw string) (fault.Spec, error) { return fault.ParseSpec(raw) }

// Re-exported duration constants.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// System identifies one of the four platforms the paper evaluates.
type System int

const (
	// SystemBaseline is stock Linux 3.5 + Xen 4.0 semantics.
	SystemBaseline System = iota
	// SystemSDC adds static dedicated I/O cores (Har'El et al., SplitX).
	SystemSDC
	// SystemDIF adds disk-idleness-based flushing (Elango et al.).
	SystemDIF
	// SystemIOrchestra is the paper's full framework.
	SystemIOrchestra
)

// String names the system as the paper's figures do.
func (s System) String() string {
	switch s {
	case SystemBaseline:
		return "Baseline"
	case SystemSDC:
		return "SDC"
	case SystemDIF:
		return "DIF"
	case SystemIOrchestra:
		return "IOrchestra"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Systems lists all four, in the paper's presentation order.
func Systems() []System {
	return []System{SystemBaseline, SystemSDC, SystemDIF, SystemIOrchestra}
}

// Option customizes a Platform.
type Option func(*options)

type options struct {
	hostCfg    hypervisor.Config
	haveCfg    bool
	policies   core.Policies
	havePol    bool
	managerCfg core.ManagerConfig
	deviceFn   func(k *sim.Kernel, rng *stats.Stream) device.BlockDevice
	trace      bool
	traceCap   int
	faults     fault.Spec
	haveFaults bool
}

// WithHostConfig overrides the host configuration (sockets, cores,
// device, latencies). Mode and RouteBySocket are still forced by the
// chosen System.
func WithHostConfig(cfg hypervisor.Config) Option {
	return func(o *options) { o.hostCfg = cfg; o.haveCfg = true }
}

// WithPolicies restricts IOrchestra to a subset of its policies, as the
// paper's single-function experiments do (e.g. flush control only in
// Sec. 5.3). Ignored for other systems.
func WithPolicies(p core.Policies) Option {
	return func(o *options) { o.policies = p; o.havePol = true }
}

// WithManagerConfig tunes the management module's thresholds and cadences.
func WithManagerConfig(cfg core.ManagerConfig) Option {
	return func(o *options) { o.managerCfg = cfg }
}

// WithDevice supplies a custom storage device built on the platform's
// kernel (e.g. a raw spec-rate array instead of the default effective-rate
// file-backed one).
func WithDevice(fn func(k *sim.Kernel, rng *stats.Stream) device.BlockDevice) Option {
	return func(o *options) { o.deviceFn = fn }
}

// WithFaults installs the deterministic fault-injection layer described
// by spec (see fault.ParseSpec for the textual grammar). Faults are drawn
// from the platform seed's "faults" stream fork, so a given (seed, spec)
// pair reproduces the exact same failure schedule on every run — and the
// workload/device streams are untouched, keeping faulted and clean runs
// paired. An empty spec is a no-op.
func WithFaults(spec fault.Spec) Option {
	return func(o *options) { o.faults = spec; o.haveFaults = true }
}

// WithTracing enables the unified decision-trace recorder: system-store
// writes and watch fires, flush-control orders, congestion verdicts and
// releases, co-scheduling updates and moves, and per-request device
// events all land in one (sim-time, seq)-ordered stream on
// Platform.Trace, exportable as NDJSON for cmd/iorchestra-trace.
// capacity bounds the retained event ring (<= 0 selects the default);
// per-kind counts and per-domain latency histograms are lifetime exact
// regardless of ring eviction.
func WithTracing(capacity int) Option {
	return func(o *options) { o.trace = true; o.traceCap = capacity }
}

// Platform is an assembled system under test: one host (use
// cluster.Testbed for multi-host setups) with the chosen system's
// components installed.
type Platform struct {
	Kernel *sim.Kernel
	Host   *hypervisor.Host
	Sys    System
	Rng    *stats.Stream

	// Manager is non-nil for SystemIOrchestra.
	Manager *core.Manager
	// DIF is non-nil for SystemDIF.
	DIF *baselines.DIF
	// SDC is non-nil for SystemSDC.
	SDC *baselines.SDC
	// Trace is the unified decision-trace recorder (nil unless the
	// platform was built WithTracing).
	Trace *trace.Recorder
	// Faults is the fault-injection engine (nil unless the platform was
	// built WithFaults and the spec is non-empty).
	Faults *fault.Injector

	// controllers are the system's policy controllers in installation
	// order; Enable and Disable dispatch the guest lifecycle to each.
	controllers []core.Controller
}

// systemSpec declares how one System assembles: how it forces the host
// I/O topology, and which policy controllers it installs. Adding a
// system (or a fifth policy) means adding an entry here — nothing else
// in the platform switches on the system identity.
type systemSpec struct {
	// configure forces Mode/RouteBySocket on the host config.
	configure func(cfg *hypervisor.Config, pol core.Policies)
	// install builds the system's controllers against the platform's
	// host and registers them (may be nil for Baseline).
	install func(p *Platform, pol core.Policies, o *options, rng *stats.Stream)
}

// modeBackend is the default host topology: the shared paravirtual
// backend path, no dedicated polling cores.
func modeBackend(cfg *hypervisor.Config, _ core.Policies) { cfg.Mode = hypervisor.ModeBackend }

var systemSpecs = map[System]systemSpec{
	SystemBaseline: {configure: modeBackend},
	SystemSDC: {
		configure: func(cfg *hypervisor.Config, _ core.Policies) {
			cfg.Mode = hypervisor.ModeDedicated
			cfg.RouteBySocket = false
		},
		install: func(p *Platform, _ core.Policies, _ *options, _ *stats.Stream) {
			p.SDC = baselines.NewSDC(p.Host)
			p.controllers = append(p.controllers, p.SDC)
		},
	},
	SystemDIF: {
		configure: modeBackend,
		install: func(p *Platform, _ core.Policies, _ *options, _ *stats.Stream) {
			p.DIF = baselines.NewDIF(p.Host)
			p.controllers = append(p.controllers, p.DIF)
		},
	},
	SystemIOrchestra: {
		configure: func(cfg *hypervisor.Config, pol core.Policies) {
			// Dedicated polling cores belong to the co-scheduling
			// function; single-policy ablations (flush-only,
			// congestion-only) run on the standard paravirtual path so
			// platforms stay comparable.
			if pol.Cosched {
				cfg.Mode = hypervisor.ModeDedicated
				cfg.RouteBySocket = true
			} else {
				cfg.Mode = hypervisor.ModeBackend
			}
		},
		install: func(p *Platform, pol core.Policies, o *options, rng *stats.Stream) {
			p.Manager = core.NewManager(p.Host, pol, o.managerCfg, rng.Fork("mgr"))
			p.Manager.SetFaults(p.Faults)
			p.controllers = append(p.controllers, p.Manager)
		},
	},
}

// NewPlatform builds a fresh kernel and host configured for the system.
// The seed fully determines every stochastic component.
func NewPlatform(sys System, seed uint64, opts ...Option) *Platform {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	k := sim.NewKernel()
	// The stream label deliberately excludes the system name: runs of
	// different systems with the same seed draw identical workload and
	// device randomness, so comparisons are paired.
	rng := stats.NewStream(seed, "platform")
	cfg := o.hostCfg
	pol := core.All()
	if o.havePol {
		pol = o.policies
	}
	spec, ok := systemSpecs[sys]
	if !ok {
		spec = systemSpecs[SystemBaseline]
	}
	spec.configure(&cfg, pol)
	var inj *fault.Injector
	if o.haveFaults && !o.faults.Empty() {
		inj = fault.NewInjector(k, o.faults, rng.Fork("faults"))
	}
	if o.deviceFn != nil {
		cfg.Device = o.deviceFn(k, rng.Fork("device"))
	} else if inj != nil && len(o.faults.SlowMembers) > 0 {
		// Reproduce the hypervisor's default array — same stream labels,
		// so member service randomness matches an unfaulted run — with
		// Degraded throttles in front of the selected members. Member
		// faults only apply to the default array; a custom WithDevice
		// wires its own degradation.
		slow := o.faults.SlowMembers
		cfg.Device = device.PaperArrayWith(k, rng.Fork("host").Fork("array"),
			func(i int, m device.BlockDevice) device.BlockDevice {
				f, ok := slow[i]
				if !ok {
					return m
				}
				inj.Note("member", 0, m.Name())
				return device.NewDegraded(k, m, f)
			})
	}
	if o.trace {
		cfg.Trace = true
		cfg.TraceCapacity = o.traceCap
	}
	h := hypervisor.New(k, cfg, rng.Fork("host"))
	p := &Platform{Kernel: k, Host: h, Sys: sys, Rng: rng, Trace: h.Recorder(), Faults: inj}
	if inj != nil {
		inj.SetRecorder(h.Recorder())
		h.Store().SetFaultHooks(inj.StoreHooks())
	}
	if spec.install != nil {
		spec.install(p, pol, &o, rng)
	}
	return p
}

// NewVM creates a guest with vcpus VCPUs and memGB gigabytes, one default
// disk, and the system's per-VM components installed.
func (p *Platform) NewVM(vcpus, memGB int, disks ...guest.DiskConfig) *hypervisor.GuestRuntime {
	rt := p.Host.CreateGuest(guest.Config{
		VCPUs:    vcpus,
		MemBytes: int64(memGB) << 30,
	}, disks...)
	p.Enable(rt)
	return rt
}

// NewTieredVM is NewVM with an SLA tier declared between guest creation
// and controller attach — the G-state controller's admission decision
// reads the SLA synchronously at attach, so a tier published after
// NewVM returns would be invisible and the guest would admit under the
// bronze default (docs/GSTATES.md). A zero sla takes the tier's
// defaults.
func (p *Platform) NewTieredVM(tier gstate.Tier, sla gstate.SLA, vcpus, memGB int, disks ...guest.DiskConfig) *hypervisor.GuestRuntime {
	rt := p.Host.CreateGuest(guest.Config{
		VCPUs:    vcpus,
		MemBytes: int64(memGB) << 30,
	}, disks...)
	gstate.PublishSLA(p.Host.Store(), rt.G.ID(), tier, sla)
	p.Enable(rt)
	return rt
}

// Enable installs the system's per-VM hooks on an existing runtime (used
// by the arrival experiments, which create guests through the cluster
// engine): every installed controller attaches the guest. Fault gating —
// an uncooperative guest whose driver never registers — lives inside the
// manager's Attach, not here.
func (p *Platform) Enable(rt *hypervisor.GuestRuntime) {
	for _, c := range p.controllers {
		c.Attach(rt)
	}
}

// Disable tears down the system's per-VM hooks (used by the arrival
// experiments when the cluster engine removes a guest): every installed
// controller forgets the guest.
func (p *Platform) Disable(rt *hypervisor.GuestRuntime) {
	for _, c := range p.controllers {
		c.Detach(rt.G.ID())
	}
}

// Controllers lists the installed policy controllers in installation
// order (empty for Baseline).
func (p *Platform) Controllers() []core.Controller { return p.controllers }

// RunFor advances the simulation by d.
func (p *Platform) RunFor(d sim.Duration) {
	p.Kernel.RunUntil(p.Kernel.Now() + d)
}
